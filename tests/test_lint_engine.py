"""The lint framework itself: suppressions, baselines, scoping, findings."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (
    Finding,
    all_rules,
    apply_baseline,
    lint_paths,
    load_baseline,
    load_module,
    run_rules,
    save_baseline,
)
from repro.analysis.lint.engine import parse_suppressions


class TestSuppressions:
    def test_parse_single_rule_with_reason(self):
        source = "x = 1  # repro-lint: disable=determinism -- display only\n"
        sups = parse_suppressions(source)
        assert len(sups) == 1
        assert sups[0].line == 1
        assert sups[0].rules == frozenset({"determinism"})
        assert sups[0].reason == "display only"
        assert sups[0].matches("determinism")
        assert not sups[0].matches("pickle-safety")

    def test_parse_multiple_rules_and_all(self):
        source = (
            "a = 1  # repro-lint: disable=determinism,lock-discipline\n"
            "b = 2  # repro-lint: disable=all -- fixture\n"
        )
        sups = parse_suppressions(source)
        assert sups[0].rules == frozenset({"determinism", "lock-discipline"})
        assert sups[1].matches("anything-at-all")

    def test_directive_inside_string_is_ignored(self):
        source = 's = "# repro-lint: disable=determinism"\n'
        assert parse_suppressions(source) == []

    def test_suppression_on_offending_line(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "now = time.time()  # repro-lint: disable=determinism -- display\n"
        )
        info = load_module(path, root=tmp_path)
        findings, suppressed = run_rules(info, all_rules())
        assert findings == []
        assert suppressed == 1

    def test_suppression_on_line_above(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "# repro-lint: disable=determinism -- display\n"
            "now = time.time()\n"
        )
        info = load_module(path, root=tmp_path)
        findings, suppressed = run_rules(info, all_rules())
        assert findings == []
        assert suppressed == 1

    def test_wrong_rule_suppression_does_not_silence(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "now = time.time()  # repro-lint: disable=pickle-safety -- nope\n"
        )
        info = load_module(path, root=tmp_path)
        findings, suppressed = run_rules(info, all_rules())
        assert [f.rule for f in findings] == ["determinism"]
        assert suppressed == 0


class TestScoping:
    def test_module_outside_library_gets_all_rules(self, tmp_path):
        path = tmp_path / "script.py"
        path.write_text("import time\nnow = time.time()\n")
        info = load_module(path, root=tmp_path)
        assert info.module == "script"
        findings, _ = run_rules(info, all_rules())
        assert [f.rule for f in findings] == ["determinism"]

    def test_out_of_scope_library_module_is_skipped(self, tmp_path):
        pkg = tmp_path / "repro" / "obs"
        pkg.mkdir(parents=True)
        path = pkg / "clock.py"
        path.write_text("import time\nnow = time.time()\n")
        info = load_module(path, root=tmp_path)
        assert info.module == "repro.obs.clock"
        findings, _ = run_rules(info, all_rules())
        assert findings == []  # obs is deliberately outside determinism scope

    def test_in_scope_library_module_is_checked(self, tmp_path):
        pkg = tmp_path / "repro" / "engine"
        pkg.mkdir(parents=True)
        path = pkg / "clock.py"
        path.write_text("import time\nnow = time.time()\n")
        info = load_module(path, root=tmp_path)
        findings, _ = run_rules(info, all_rules())
        assert [f.rule for f in findings] == ["determinism"]


class TestFindings:
    def test_render_and_dict_round_trip(self):
        finding = Finding(
            rule="determinism",
            path="src/x.py",
            line=7,
            message="wall-clock read",
            hint="use perf_counter",
        )
        assert "src/x.py:7: [determinism] wall-clock read" in finding.render()
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(
                rule="r", path="p", line=1, message="m", severity="fatal"
            )

    def test_baseline_key_ignores_line(self):
        one = Finding(rule="r", path="p", line=1, message="m")
        two = Finding(rule="r", path="p", line=99, message="m")
        assert one.baseline_key == two.baseline_key


class TestBaseline:
    def _finding(self, line=1, message="m"):
        return Finding(rule="r", path="p.py", line=line, message=message)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self._finding(1, "a"), self._finding(2, "b")]
        save_baseline(path, findings)
        assert load_baseline(path) == sorted(
            findings, key=lambda f: f.baseline_key
        )

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_apply_splits_new_from_grandfathered(self):
        baseline = [self._finding(1, "old")]
        live = [self._finding(5, "old"), self._finding(6, "new")]
        new, grandfathered = apply_baseline(live, baseline)
        assert [f.message for f in new] == ["new"]
        assert [f.message for f in grandfathered] == ["old"]

    def test_baseline_entry_absorbs_at_most_one(self):
        baseline = [self._finding(1, "dup")]
        live = [self._finding(5, "dup"), self._finding(6, "dup")]
        new, grandfathered = apply_baseline(live, baseline)
        assert len(new) == 1 and len(grandfathered) == 1

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_non_baseline_payload_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError, match="not a repro-lint baseline"):
            load_baseline(path)


class TestLintPaths:
    def test_unparseable_file_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad], all_rules(), root=tmp_path)
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_directory_walk_and_dedup(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n")
        report = lint_paths(
            [tmp_path, tmp_path / "a.py"], all_rules(), root=tmp_path
        )
        assert report.files_checked == 2
        assert report.findings == []

    def test_findings_sorted_by_location(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "import time\n"
            "import random\n"
            "b = time.time()\n"
            "a = random.random()\n"
        )
        report = lint_paths([path], all_rules(), root=tmp_path)
        lines = [f.line for f in report.sorted_findings()]
        assert lines == sorted(lines)


FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def test_fixture_directory_exit_semantics():
    """Positive fixtures produce findings; negative fixtures stay silent."""
    rules = all_rules()
    for fixture in sorted(FIXTURES.glob("*.py")):
        report = lint_paths([fixture], rules)
        if fixture.name.startswith("pos_"):
            assert report.findings, f"{fixture.name} should produce findings"
        else:
            assert not report.findings, (
                f"{fixture.name} should be clean, got "
                f"{[f.render() for f in report.findings]}"
            )
