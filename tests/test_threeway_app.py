"""Integration tests: three-way similarity (multiway extension) app."""

from __future__ import annotations

import pytest

from repro.apps.threeway_similarity import (
    all_triples_above,
    run_threeway_similarity,
    triple_jaccard,
)
from repro.workloads.documents import Document, generate_documents


def small_corpus(m: int, q: int, seed: int) -> list[Document]:
    docs = generate_documents(m, q, seed=seed, vocabulary_size=60)
    # Clamp sizes to q // 3 so the multiway bin scheme applies.
    clamped = []
    for doc in docs:
        limit = max(1, q // 3)
        clamped.append(Document(doc.doc_id, doc.tokens[:limit]))
    return clamped


class TestTripleJaccard:
    def test_identical(self):
        d = Document(0, ("a", "b"))
        assert triple_jaccard(d, d, d) == 1.0

    def test_disjoint(self):
        a, b, c = (Document(i, (t,)) for i, t in enumerate("xyz"))
        assert triple_jaccard(a, b, c) == 0.0

    def test_partial_overlap(self):
        a = Document(0, ("a", "b"))
        b = Document(1, ("a", "c"))
        c = Document(2, ("a", "d"))
        assert triple_jaccard(a, b, c) == pytest.approx(1 / 4)


class TestThreeWayApp:
    def test_matches_ground_truth(self):
        docs = small_corpus(12, 30, seed=61)
        run = run_threeway_similarity(docs, q=30, threshold=0.05)
        assert run.triple_set() == all_triples_above(docs, 0.05)

    def test_every_triple_exactly_once_at_zero_threshold(self):
        docs = small_corpus(10, 24, seed=62)
        run = run_threeway_similarity(docs, q=24, threshold=0.0)
        m = len(docs)
        assert len(run.triples) == m * (m - 1) * (m - 2) // 6

    def test_capacity_respected(self):
        docs = small_corpus(14, 36, seed=63)
        run = run_threeway_similarity(docs, q=36, threshold=0.1)
        assert run.metrics.max_reducer_load <= 36
        assert run.metrics.capacity_violations == ()

    def test_schema_valid(self):
        docs = small_corpus(9, 24, seed=64)
        run = run_threeway_similarity(docs, q=24, threshold=0.1)
        assert run.schema.require_valid()
