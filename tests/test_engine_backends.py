"""Unit tests for the engine's pluggable backends.

Map/reduce functions used with the ``processes`` backend are module-level
so they survive pickling — the same discipline the apps follow.
"""

from __future__ import annotations

import pytest

from repro.engine.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_workers,
    get_backend,
)
from repro.engine.engine import ExecutionEngine
from repro.exceptions import CapacityExceededError
from repro.mapreduce.job import MapReduceJob


def word_map(record: str):
    """Emit (word, 1) per word — the classic word count mapper."""
    for word in record.split():
        yield word, 1


def word_reduce(key, values):
    """Sum a word's counts."""
    yield key, sum(values)


def count_combiner(key, values):
    """Mapper-side pre-aggregation of counts."""
    yield sum(values)


RECORDS = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
    "a brown dog",
    "fox and dog and fox",
]


class TestBackendRegistry:
    def test_registry_names(self):
        assert sorted(BACKENDS) == ["processes", "serial", "threads"]

    def test_get_backend_by_name(self):
        backend = get_backend("threads", max_workers=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.max_workers == 3

    def test_get_backend_passthrough(self):
        instance = ProcessBackend(max_workers=2, chunksize=5)
        assert get_backend(instance) is instance

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'"):
            get_backend("gpu")

    def test_serial_is_single_worker(self):
        assert SerialBackend(max_workers=8).max_workers == 1

    def test_bad_worker_and_chunk_counts(self):
        with pytest.raises(ValueError, match="max_workers"):
            ThreadBackend(max_workers=0)
        with pytest.raises(ValueError, match="chunksize"):
            ProcessBackend(chunksize=0)

    def test_available_workers_positive(self):
        assert available_workers() >= 1

    def test_empty_task_list(self):
        for name in BACKENDS:
            assert get_backend(name).run_tasks(len, []) == []


class TestBackendEquivalence:
    @pytest.fixture
    def reference(self):
        return MapReduceJob(map_fn=word_map, reduce_fn=word_reduce).run(RECORDS)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_matches_simulator(self, backend, reference):
        engine = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            backend=backend,
            num_workers=2,
        )
        result = engine.run(RECORDS)
        assert result.outputs == reference.outputs
        assert result.metrics == reference.metrics
        assert result.engine.backend == backend

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_combiner_matches_simulator(self, backend):
        reference = MapReduceJob(
            map_fn=word_map, reduce_fn=word_reduce, combiner_fn=count_combiner
        ).run(RECORDS)
        engine = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            combiner_fn=count_combiner,
            backend=backend,
            num_workers=2,
        )
        result = engine.run(RECORDS)
        assert result.outputs == reference.outputs
        assert result.metrics == reference.metrics
        # The combiner shrinks the shuffle relative to the raw map output.
        assert result.metrics.communication_cost < len(
            [w for r in RECORDS for w in r.split()]
        )

    def test_chunk_sizes_do_not_change_results(self):
        baseline = ExecutionEngine(map_fn=word_map, reduce_fn=word_reduce).run(
            RECORDS
        )
        chunked = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            backend="threads",
            num_workers=2,
            map_chunk_size=1,
            num_reduce_tasks=5,
        ).run(RECORDS)
        assert chunked.outputs == baseline.outputs
        assert chunked.metrics == baseline.metrics
        assert chunked.engine.num_map_tasks == len(RECORDS)
        # Empty hash partitions are dropped, so the requested partition
        # count is an upper bound on dispatched reduce tasks.
        assert 1 <= chunked.engine.num_reduce_tasks <= 5

    def test_task_loads_cover_all_keys(self):
        result = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            backend="threads",
            num_reduce_tasks=2,
        ).run(RECORDS)
        assert sum(result.engine.task_loads) == sum(
            result.metrics.reducer_loads.values()
        )
        assert result.engine.bytes_moved == result.metrics.communication_cost


class TestCapacityEnforcement:
    def test_strict_overflow_raises_like_simulator(self):
        engine = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            reducer_capacity=2,
            strict_capacity=True,
        )
        with pytest.raises(CapacityExceededError) as engine_error:
            engine.run(RECORDS)
        job = MapReduceJob(
            map_fn=word_map,
            reduce_fn=word_reduce,
            reducer_capacity=2,
            strict_capacity=True,
        )
        with pytest.raises(CapacityExceededError) as job_error:
            job.run(RECORDS)
        assert engine_error.value.key == job_error.value.key
        assert engine_error.value.load == job_error.value.load
        assert str(engine_error.value) == str(job_error.value)

    def test_non_strict_records_identical_violations(self):
        engine_result = ExecutionEngine(
            map_fn=word_map,
            reduce_fn=word_reduce,
            reducer_capacity=2,
            strict_capacity=False,
            backend="threads",
        ).run(RECORDS)
        job_result = MapReduceJob(
            map_fn=word_map,
            reduce_fn=word_reduce,
            reducer_capacity=2,
            strict_capacity=False,
        ).run(RECORDS)
        assert engine_result.metrics == job_result.metrics
        assert engine_result.metrics.capacity_violations


class TestBackendContract:
    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()  # type: ignore[abstract]

    def test_results_preserve_task_order(self):
        tasks = list(range(20))
        for name in BACKENDS:
            backend = get_backend(name, max_workers=4)
            assert backend.run_tasks(str, tasks) == [str(t) for t in tasks]
