"""Integration tests: every example script runs cleanly end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_all_demos():
    names = {p.name for p in SCRIPTS}
    assert {
        "quickstart.py",
        "similarity_join_demo.py",
        "skew_join_demo.py",
        "tensor_product_demo.py",
        "capacity_planning_demo.py",
    } <= names


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their results"
