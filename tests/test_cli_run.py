"""Tests for the ``repro run`` subcommand and the ``--version`` flag."""

from __future__ import annotations

import pytest

import repro
from repro.cli import build_parser, main


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestRunSubcommand:
    def test_parser_accepts_run(self):
        args = build_parser().parse_args(
            ["run", "--app", "similarity", "--q", "40", "--backend", "threads"]
        )
        assert args.command == "run"
        assert args.app == "similarity"
        assert args.backend == "threads"

    def test_similarity_run_prints_metrics(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "similarity",
                "--q",
                "50",
                "--m",
                "16",
                "--backend",
                "serial",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "similarity join" in out
        assert "job metrics" in out
        assert "engine metrics" in out
        assert "serial" in out

    def test_skew_join_run_on_threads(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "skew-join",
                "--q",
                "60",
                "--tuples",
                "120",
                "--keys",
                "6",
                "--skew",
                "1.3",
                "--backend",
                "threads",
                "--num-workers",
                "2",
                "--seed",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "skew join" in out
        assert "heavy keys" in out
        assert "threads" in out

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--app", "similarity", "--q", "40", "--backend", "gpu"])
        assert excinfo.value.code == 2

    def test_non_positive_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "--app",
                    "similarity",
                    "--q",
                    "40",
                    "--num-workers",
                    "0",
                ]
            )
        assert excinfo.value.code == 2

    def test_unknown_method_is_reported_as_error(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "skew-join",
                "--q",
                "40",
                "--tuples",
                "200",
                "--keys",
                "5",
                "--skew",
                "1.6",
                "--seed",
                "1",
                "--method",
                "magic",
            ]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "unknown X2Y method" in captured.err
