"""Tests for the ``repro run``/``bench`` subcommands and ``--version``."""

from __future__ import annotations

import pytest

import repro
from repro.cli import build_parser, main


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestRunSubcommand:
    def test_parser_accepts_run(self):
        args = build_parser().parse_args(
            ["run", "--app", "similarity", "--q", "40", "--backend", "threads"]
        )
        assert args.command == "run"
        assert args.app == "similarity"
        assert args.backend == "threads"

    def test_similarity_run_prints_metrics(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "similarity",
                "--q",
                "50",
                "--m",
                "16",
                "--backend",
                "serial",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "similarity join" in out
        assert "job metrics" in out
        assert "engine metrics" in out
        assert "serial" in out

    def test_skew_join_run_on_threads(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "skew-join",
                "--q",
                "60",
                "--tuples",
                "120",
                "--keys",
                "6",
                "--skew",
                "1.3",
                "--backend",
                "threads",
                "--num-workers",
                "2",
                "--seed",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "skew join" in out
        assert "heavy keys" in out
        assert "threads" in out

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--app", "similarity", "--q", "40", "--backend", "gpu"])
        assert excinfo.value.code == 2

    def test_non_positive_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "--app",
                    "similarity",
                    "--q",
                    "40",
                    "--num-workers",
                    "0",
                ]
            )
        assert excinfo.value.code == 2

    def test_bench_prints_speedup_table(self, capsys):
        status = main(
            [
                "bench",
                "--scale",
                "0.05",
                "--tuples",
                "80",
                "--backends",
                "serial,threads",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "engine quick bench" in out
        assert "speedup_vs_serial" in out
        for scenario in ("skew_join", "map_heavy", "reduce_heavy", "shuffle_heavy"):
            assert scenario in out

    def test_bench_check_passes_on_small_workload(self, capsys):
        # --check compares threads against serial; on any machine threads
        # must stay within the generous 1.3x bound used by the CI smoke.
        # The scale keeps serial walls well above check_regression's
        # too-fast-to-judge floor while staying quick, and best-of-2 plus
        # the GIL-releasing scenario bodies keep the ratio noise-free.
        status = main(
            [
                "bench",
                "--scale",
                "0.2",
                "--tuples",
                "100",
                "--backends",
                "serial,threads",
                "--repeat",
                "2",
                "--check",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "perf smoke: ok" in out

    def test_bench_check_fails_without_a_baseline(self, capsys):
        # Excluding serial (or threads) must fail loudly, not pass
        # vacuously — this is the CI perf-smoke gate.
        status = main(
            ["bench", "--scale", "0.05", "--tuples", "60",
             "--backends", "threads", "--check"]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "compared nothing" in captured.err

    def test_bench_rejects_unknown_backend(self, capsys):
        status = main(["bench", "--backends", "serial,gpu"])
        assert status == 1
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_method_is_reported_as_error(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "skew-join",
                "--q",
                "40",
                "--tuples",
                "200",
                "--keys",
                "5",
                "--skew",
                "1.6",
                "--seed",
                "1",
                "--method",
                "magic",
            ]
        )
        captured = capsys.readouterr()
        assert status == 1
        assert "unknown X2Y method" in captured.err


class TestPlanSubcommand:
    def test_plan_prints_candidates_and_choice(self, capsys):
        status = main(["plan", "--sizes", "3,5,2,7,4", "--q", "12"])
        out = capsys.readouterr().out
        assert status == 0
        assert "chosen    :" in out
        assert "candidates" in out
        assert "rationale :" in out

    def test_plan_explain_shows_cost_columns(self, capsys):
        status = main(["plan", "--sizes", "3,5,2,7,4", "--q", "12", "--explain"])
        out = capsys.readouterr().out
        assert status == 0
        assert "communication_cost" in out
        assert "makespan" in out

    def test_plan_json_out_round_trips(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        status = main(
            ["plan", "--sizes", "3,5,2,7,4", "--q", "12",
             "--objective", "min-communication", "--json-out", str(target)]
        )
        assert status == 0
        from repro.planner import Plan

        loaded = Plan.from_json(target.read_text())
        assert loaded.spec.objective == "min-communication"
        assert loaded.schema().verify().valid
        assert loaded.chosen in {c.method for c in loaded.candidates}

    def test_plan_x2y_and_multiway(self, capsys):
        assert main(["plan", "--x-sizes", "9,2,3", "--y-sizes", "5,3", "--q", "17"]) == 0
        assert "x2y" in capsys.readouterr().out
        assert main(["plan", "--sizes", "2,2,2,2", "--q", "9", "--r", "3"]) == 0
        assert "multiway" in capsys.readouterr().out

    def test_plan_pinned_method(self, capsys):
        status = main(
            ["plan", "--sizes", "3,5,2", "--q", "12", "--method", "greedy"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "pinned" in out

    def test_plan_rejects_bad_combinations(self, capsys):
        assert main(["plan", "--q", "12"]) == 1
        assert "needs --sizes" in capsys.readouterr().err
        assert main(
            ["plan", "--sizes", "3,4", "--x-sizes", "3", "--y-sizes",
             "4", "--q", "12"]
        ) == 1
        assert "cannot be combined" in capsys.readouterr().err
        assert main(["plan", "--x-sizes", "3,4", "--q", "12"]) == 1
        assert "both --x-sizes and --y-sizes" in capsys.readouterr().err

    def test_plan_infeasible_is_reported(self, capsys):
        assert main(["plan", "--sizes", "7,8", "--q", "10"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_plan_unknown_method_lists_choices(self, capsys):
        assert main(
            ["plan", "--sizes", "3,4", "--q", "12", "--method", "magic"]
        ) == 1
        err = capsys.readouterr().err
        assert "unknown A2A method 'magic'" in err
        assert "bin_pairing" in err


class TestPlanAutoMode:
    def test_run_plan_auto_similarity(self, capsys):
        status = main(
            ["run", "--app", "similarity", "--q", "50", "--m", "14",
             "--seed", "5", "--plan", "auto"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "plan      :" in out
        assert "planner-resolved backend=" in out
        assert "engine metrics" in out

    def test_run_plan_auto_skew_join(self, capsys):
        status = main(
            ["run", "--app", "skew-join", "--q", "60", "--tuples", "150",
             "--keys", "6", "--seed", "2", "--plan", "auto",
             "--objective", "min-communication"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "per-heavy-key methods" in out

    def test_run_explicit_backend_still_wins_under_plan_auto(self, capsys):
        status = main(
            ["run", "--app", "similarity", "--q", "50", "--m", "12",
             "--plan", "auto", "--backend", "serial"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "serial" in out

    def test_bench_plan_auto_adds_planned_row(self, capsys):
        status = main(
            ["bench", "--scale", "0.05", "--tuples", "80",
             "--backends", "serial", "--plan", "auto"]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "planned[" in out
