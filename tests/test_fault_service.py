"""Fault tolerance at the service layer, plus the fault-plane CLI surface.

Covers the recovery contracts that live above the engine: per-job retry
policies and deadlines layered onto submissions, shared-pool eviction
when a job dies of worker loss (a broken pool must not poison later
jobs), failed-job observability, cancellation racing completion, and the
``repro run``/``submit``/``serve`` fault-plane behavior.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.engine.config import ExecutionConfig
from repro.exceptions import (
    DeadlineExceededError,
    InvalidInstanceError,
    JobCancelledError,
    TaskRetryExhaustedError,
)
from repro.faults import RetryPolicy
from repro.planner import Environment, JobSpec
from repro.service import CANCELLED, DONE, FAILED, JobService
from repro.service.scheduler import JobScheduler
from repro.service.service import collect_reduce, spec_records

SPEC = JobSpec.a2a([3, 5, 2, 7, 4], q=12)

ENV = Environment(num_workers=2, memory_bytes=1 << 30)

#: Fast deterministic policy (backoff in the low milliseconds).
POLICY = RetryPolicy(max_attempts=6, backoff_base=0.001, backoff_max=0.01)

#: Pinned geometry so injected decisions are stable across test runs.
GEOMETRY = dict(map_chunk_size=2, num_reduce_tasks=4)


def _submit_exec(service, *, config, job_id, **kwargs):
    return service.submit(
        SPEC,
        records=spec_records(SPEC),
        reduce_fn=collect_reduce,
        config=config,
        job_id=job_id,
        **kwargs,
    )


class TestPerJobPolicy:
    def test_injected_crashes_recovered_under_per_job_retry(self):
        with JobService(slots=1, env=ENV) as service:
            clean = _submit_exec(
                service,
                config=ExecutionConfig(backend="serial", **GEOMETRY),
                job_id="clean",
            )
            assert clean.wait(timeout=30.0).state == DONE
            faulty = _submit_exec(
                service,
                config=ExecutionConfig(
                    backend="serial", faults="crash=0.2,seed=7", **GEOMETRY
                ),
                job_id="faulty",
                retry=POLICY,
            )
            assert faulty.wait(timeout=30.0).state == DONE
            # Recovery is invisible in results but visible in telemetry.
            assert faulty.result().outputs == clean.result().outputs
            counters = service.metrics_snapshot()["counters"]
            assert counters["engine.task_retries"] >= 1
            by_id = {
                record.job_id: record
                for record in service.observations.snapshot()
            }
            assert by_id["faulty"].status == DONE
            assert by_id["faulty"].task_retries >= 1
            assert by_id["clean"].task_retries == 0

    def test_per_job_deadline_fails_the_job(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit(
                SPEC,
                records=spec_records(SPEC),
                reduce_fn=_slow_collect,
                config=ExecutionConfig(backend="serial", **GEOMETRY),
                job_id="late",
                deadline=0.01,
            )
            status = handle.wait(timeout=30.0)
            assert status.state == FAILED
            assert "DeadlineExceededError" in status.error
            with pytest.raises(DeadlineExceededError):
                handle.result()
            # The failure is a first-class observation.
            record = service.observations.snapshot()[-1]
            assert record.job_id == "late"
            assert record.status == FAILED
            assert "DeadlineExceededError" in record.error

    def test_invalid_deadline_rejected_at_submit(self):
        with JobService(slots=1, env=ENV) as service:
            with pytest.raises(InvalidInstanceError, match="deadline"):
                service.submit(SPEC, deadline=0.0)


class TestPoolEvictionOnBreakage:
    def test_worker_death_evicts_pool_and_next_job_recovers(self):
        with JobService(slots=1, env=ENV) as service:
            doomed = _submit_exec(
                service,
                config=ExecutionConfig(
                    backend="processes",
                    num_workers=2,
                    faults="kill=1.0,seed=1",
                    **GEOMETRY,
                ),
                job_id="doomed",
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
            )
            status = doomed.wait(timeout=60.0)
            assert status.state == FAILED
            assert "worker" in status.error
            with pytest.raises(TaskRetryExhaustedError):
                doomed.result()
            counters = service.metrics_snapshot()["counters"]
            assert counters["pools.evicted"] == 1
            # The poisoned shared pool is gone: the next job with the
            # same shape gets a freshly built backend and succeeds.
            healthy = _submit_exec(
                service,
                config=ExecutionConfig(
                    backend="processes", num_workers=2, **GEOMETRY
                ),
                job_id="healthy",
            )
            assert healthy.wait(timeout=60.0).state == DONE
            serial = _submit_exec(
                service,
                config=ExecutionConfig(backend="serial", **GEOMETRY),
                job_id="serial-ref",
            )
            assert serial.wait(timeout=30.0).state == DONE
            assert healthy.result().outputs == serial.result().outputs

    def test_plain_failures_do_not_evict(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit(
                SPEC,
                records=spec_records(SPEC),
                reduce_fn=_angry_collect,
                config=ExecutionConfig(
                    backend="threads", num_workers=2, **GEOMETRY
                ),
                job_id="buggy",
            )
            assert handle.wait(timeout=30.0).state == FAILED
            counters = service.metrics_snapshot()["counters"]
            assert counters.get("pools.evicted", 0) == 0


class TestCancelRacingCompletion:
    def test_cancel_landing_after_store_discards_the_result(self):
        # The narrowest race: the worker has stored its result and is one
        # instruction from committing DONE when cancel() lands.  The
        # commit must become CANCELLED and the stored result must vanish.
        with JobService(slots=1, env=ENV) as service:
            original_put = service.results.put

            def racing_put(result):
                original_put(result)
                assert service.cancel(result.job_id) is True

            service.results.put = racing_put
            try:
                handle = _submit_exec(
                    service,
                    config=ExecutionConfig(backend="serial", **GEOMETRY),
                    job_id="raced",
                )
                status = handle.wait(timeout=30.0)
            finally:
                service.results.put = original_put
            assert status.state == CANCELLED
            with pytest.raises(JobCancelledError):
                handle.result()
            with pytest.raises(KeyError):
                service.results.fetch("raced")

    def test_scheduler_cancel_after_dispatch_reports_false(self):
        import threading

        started = threading.Event()
        release = threading.Event()
        ran: list[str] = []

        def blocker():
            started.set()
            assert release.wait(10.0)
            ran.append("blocker")

        scheduler = JobScheduler(slots=1)
        try:
            scheduler.submit("blocker", blocker)
            assert started.wait(5.0)
            # Already dispatched: cancellation is the caller's problem.
            assert scheduler.cancel_queued("blocker") is False
            scheduler.submit("queued", lambda: ran.append("queued"))
            # Still queued behind the blocker: cancellation is exact.
            assert scheduler.cancel_queued("queued") is True
            release.set()
            assert scheduler.drain(timeout=10.0)
            assert ran == ["blocker"]
            assert "queued" not in scheduler.dispatch_order
        finally:
            release.set()
            scheduler.close(timeout=10.0)


def _slow_collect(key, values):
    time.sleep(0.05)
    yield from collect_reduce(key, values)


def _angry_collect(key, values):
    raise ValueError("user bug, not a fault")
    yield  # pragma: no cover


class TestFaultPlaneCLI:
    def test_run_with_injection_reports_recovery(self, capsys):
        status = main(
            [
                "run",
                "--app",
                "similarity",
                "--q",
                "50",
                "--m",
                "16",
                "--backend",
                "serial",
                "--seed",
                "3",
                "--inject-faults",
                "crash=0.2,seed=7",
                "--max-attempts",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "faults" in out
        assert "retries=" in out
        assert "spec=crash=0.2,seed=7" in out

    def test_run_rejects_malformed_spec(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "--app",
                    "similarity",
                    "--inject-faults",
                    "cosmic=0.5",
                ]
            )
        assert excinfo.value.code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_submit_rejection_exits_nonzero_with_error_line(
        self, monkeypatch, capsys
    ):
        small_env = Environment(num_workers=2, memory_bytes=1 << 20)
        monkeypatch.setattr(
            Environment, "detect", classmethod(lambda cls: small_env)
        )
        status = main(["submit", "--sizes", "3000,3000", "--q", "10000"])
        captured = capsys.readouterr()
        assert status == 1
        error_line = json.loads(captured.err.strip().splitlines()[-1])
        assert error_line["event"] == "error"
        assert error_line["state"] == "rejected"
        assert error_line["error"]

    def test_serve_sigterm_drains_and_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.getcwd(), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        obs_log = tmp_path / "obs.ndjson"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--obs-log",
                str(obs_log),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            request = {
                "id": "j1",
                "spec": {"kind": "a2a", "q": 12, "sizes": [3, 5, 2, 7, 4]},
            }
            proc.stdin.write(json.dumps(request) + "\n")
            proc.stdin.flush()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and proc.poll() is None:
                if obs_log.exists() and obs_log.read_text().strip():
                    break  # the job finished and was flushed to the log
                time.sleep(0.1)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30.0)
        except Exception:
            proc.kill()
            proc.communicate(timeout=10.0)
            raise
        assert proc.returncode == 0, (out, err)
        lines = [
            json.loads(line) for line in out.splitlines() if line.strip()
        ]
        shutdown_states = [
            line["state"]
            for line in lines
            if line.get("event") == "shutdown"
        ]
        assert shutdown_states == ["draining", "complete"], lines
        results = [line for line in lines if line.get("event") == "result"]
        assert [r["id"] for r in results] == ["j1"]
        assert results[0]["state"] == "done"
        # The graceful path flushed the observation log before exiting.
        logged = [
            json.loads(line)
            for line in obs_log.read_text().splitlines()
            if line.strip()
        ]
        assert [entry["job_id"] for entry in logged] == ["j1"]
