"""Tests for the Dataset abstraction and the engine's streaming data path."""

from __future__ import annotations

from functools import partial

import pytest

from repro.apps.similarity_join import run_similarity_join
from repro.dataset import Dataset, as_dataset, iter_chunks
from repro.engine.backends import BACKENDS
from repro.engine.engine import ExecutionEngine, execute_schema
from repro.engine.quickbench import fanout_map, sum_reduce
from repro.exceptions import InvalidInstanceError
from repro.workloads.documents import document_dataset, generate_documents


class TestDataset:
    def test_list_backed_is_reiterable_with_length(self):
        ds = Dataset.from_list([1, 2, 3])
        assert ds.length == 3
        assert ds.is_materialized
        assert list(ds) == [1, 2, 3]
        assert list(ds) == [1, 2, 3]
        assert ds.materialize() == [1, 2, 3]

    def test_factory_backed_is_reiterable_and_lazy(self):
        ds = Dataset.from_factory(partial(range, 5), length=5)
        assert not ds.is_materialized
        assert list(ds) == list(range(5))
        assert list(ds) == list(range(5))

    def test_iterator_backed_is_single_use(self):
        ds = as_dataset(i for i in range(3))
        assert ds.length is None
        assert list(ds) == [0, 1, 2]
        with pytest.raises(InvalidInstanceError, match="single-use"):
            list(ds)

    def test_as_dataset_passthrough_and_coercions(self):
        ds = Dataset.from_list([1])
        assert as_dataset(ds) is ds
        assert as_dataset((1, 2)).length == 2
        assert as_dataset(range(4)).length == 4
        with pytest.raises(InvalidInstanceError):
            as_dataset(42)

    def test_constructor_rejects_ambiguous_sources(self):
        with pytest.raises(InvalidInstanceError):
            Dataset(items=[1], factory=list)
        with pytest.raises(InvalidInstanceError):
            Dataset()
        with pytest.raises(InvalidInstanceError):
            Dataset.from_factory(42)  # not callable

    def test_iter_chunks_shapes(self):
        assert list(iter_chunks(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
        assert list(iter_chunks([], 3)) == []
        with pytest.raises(InvalidInstanceError):
            list(iter_chunks([1], 0))


class TestStreamingEngine:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_streaming_equals_materialized(self, backend):
        records = list(range(2000))
        baseline = ExecutionEngine(
            map_fn=fanout_map, reduce_fn=sum_reduce
        ).run(records)
        streamed = ExecutionEngine(
            map_fn=fanout_map, reduce_fn=sum_reduce, backend=backend
        ).run(Dataset.from_factory(partial(range, 2000), length=2000))
        assert streamed.outputs == baseline.outputs
        assert streamed.metrics == baseline.metrics

    def test_unknown_length_generator_stream(self):
        baseline = ExecutionEngine(
            map_fn=fanout_map, reduce_fn=sum_reduce
        ).run(list(range(3000)))
        result = ExecutionEngine(
            map_fn=fanout_map, reduce_fn=sum_reduce, backend="threads"
        ).run(i for i in range(3000))
        assert result.outputs == baseline.outputs
        assert result.metrics.map_input_records == 3000
        # Unknown length -> fixed streaming chunks, so several map tasks.
        assert result.engine.num_map_tasks == 3

    def test_execute_schema_accepts_dataset(self, small_a2a):
        from repro.core.selector import solve_a2a

        schema = solve_a2a(small_a2a)

        def reduce_fn(key, values):
            yield key, sorted(i for i, _ in values)

        records = [f"r{i}" for i in range(small_a2a.m)]
        from_list = execute_schema(schema, records, reduce_fn)
        from_ds = execute_schema(
            schema,
            Dataset.from_factory(lambda: iter(records), length=len(records)),
            reduce_fn,
        )
        assert from_ds.outputs == from_list.outputs
        assert from_ds.metrics == from_list.metrics

    def test_execute_schema_dataset_count_mismatch(self, small_a2a):
        from repro.core.selector import solve_a2a

        schema = solve_a2a(small_a2a)

        def reduce_fn(key, values):
            yield key

        with pytest.raises(InvalidInstanceError, match="expects"):
            execute_schema(
                schema,
                Dataset.from_factory(lambda: iter(["only-one"])),
                reduce_fn,
            )


class TestWorkloadDatasets:
    def test_document_dataset_matches_generate_documents(self):
        eager = generate_documents(12, 40, seed=7)
        lazy = document_dataset(12, 40, seed=7)
        assert lazy.length == 12
        assert lazy.materialize() == eager
        # Re-iteration replays the identical corpus.
        assert list(lazy) == eager

    def test_document_dataset_unseeded_is_self_consistent(self):
        ds = document_dataset(6, 30)
        assert list(ds) == list(ds)

    def test_document_dataset_validates_vocabulary(self):
        with pytest.raises(InvalidInstanceError):
            document_dataset(4, 20, vocabulary_size=0)

    def test_similarity_join_accepts_dataset(self):
        docs = document_dataset(14, 50, seed=3)
        from_ds = run_similarity_join(docs, 50, 0.2, backend="serial")
        from_list = run_similarity_join(
            generate_documents(14, 50, seed=3), 50, 0.2, backend="serial"
        )
        assert from_ds.pairs == from_list.pairs
