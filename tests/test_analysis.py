"""Tests for the analysis harness (sweeps and ratio studies)."""

from __future__ import annotations

import pytest

from repro.analysis.ratios import a2a_ratio_study, x2y_ratio_study
from repro.analysis.tradeoffs import (
    sweep_a2a_communication,
    sweep_a2a_parallelism,
    sweep_a2a_reducers,
    sweep_x2y_reducers,
)
from repro.workloads.distributions import sample_sizes


@pytest.fixture(scope="module")
def sizes():
    raw = sample_sizes("uniform", 40, 100, seed=50)
    return [min(s, 50) for s in raw]  # every pair co-fits at the smallest q


class TestSweepA2AReducers:
    def test_row_per_q(self, sizes):
        rows = sweep_a2a_reducers(sizes, [100, 200, 400])
        assert [r["q"] for r in rows] == [100, 200, 400]

    def test_reducers_decrease_with_q(self, sizes):
        rows = sweep_a2a_reducers(sizes, [100, 400], methods=("bin_pairing",))
        assert rows[0]["bin_pairing"] >= rows[1]["bin_pairing"]

    def test_methods_at_least_lower_bound(self, sizes):
        rows = sweep_a2a_reducers(sizes, [120, 240])
        for row in rows:
            for method in ("bin_pairing", "big_small", "greedy"):
                if row[method] is not None:
                    assert row[method] >= row["lower_bound"]

    def test_infeasible_method_records_none(self):
        # bin_pairing cannot handle a big input; the sweep must not crash.
        rows = sweep_a2a_reducers([30, 4, 4], [52], methods=("bin_pairing",))
        assert rows[0]["bin_pairing"] is None


class TestSweepA2ACommunication:
    def test_comm_cost_decreases_with_q(self, sizes):
        rows = sweep_a2a_communication(sizes, [100, 200, 400])
        costs = [r["comm_cost"] for r in rows]
        assert costs[0] >= costs[-1]

    def test_cost_at_least_lower_bound_and_volume(self, sizes):
        for row in sweep_a2a_communication(sizes, [150, 300]):
            assert row["comm_cost"] >= row["comm_lower_bound"]
            assert row["comm_cost"] >= row["volume"]

    def test_replication_rate_consistent(self, sizes):
        for row in sweep_a2a_communication(sizes, [150]):
            assert row["replication_rate"] == pytest.approx(
                row["comm_cost"] / row["volume"], abs=0.001
            )


class TestSweepA2AParallelism:
    def test_waves_shrink_with_q(self, sizes):
        rows = sweep_a2a_parallelism(sizes, [100, 400], num_workers=8)
        assert rows[0]["waves"] >= rows[-1]["waves"]

    def test_columns_present(self, sizes):
        row = sweep_a2a_parallelism(sizes, [200], num_workers=4)[0]
        assert {"q", "num_reducers", "makespan", "waves", "utilization"} <= set(row)


class TestSweepX2YReducers:
    def test_basic_sweep(self):
        xs = sample_sizes("uniform", 20, 80, seed=51)
        ys = sample_sizes("uniform", 20, 80, seed=52)
        xs = [min(s, 40) for s in xs]
        ys = [min(s, 40) for s in ys]
        rows = sweep_x2y_reducers(xs, ys, [80, 160])
        assert rows[0]["best_split_grid"] >= rows[1]["best_split_grid"]
        for row in rows:
            assert row["best_split_grid"] >= row["lower_bound"]


class TestRatioStudies:
    def test_a2a_bin_pairing_ratio_reasonable(self):
        summary = a2a_ratio_study(
            "bin_pairing", "uniform", trials=10, m=30, q=200, seed=0
        )
        assert summary.feasible_trials == 10
        assert 1.0 <= summary.mean_ratio <= 6.0

    def test_a2a_ratio_reproducible(self):
        a = a2a_ratio_study("greedy", "zipf", trials=5, m=20, q=150, seed=1)
        b = a2a_ratio_study("greedy", "zipf", trials=5, m=20, q=150, seed=1)
        assert a == b

    def test_x2y_grid_ratio_reasonable(self):
        summary = x2y_ratio_study(
            "best_split_grid", "uniform", trials=8, m=15, n=15, q=150, seed=2
        )
        assert summary.feasible_trials == 8
        assert summary.max_ratio < 8.0

    def test_as_row(self):
        summary = a2a_ratio_study("bin_pairing", "normal", trials=4, m=15, q=120)
        row = summary.as_row()
        assert row["method"] == "bin_pairing"
        assert row["solved"] == summary.feasible_trials
