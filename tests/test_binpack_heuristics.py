"""Unit tests for the bin-packing heuristics (FFD/BFD/NF/WF)."""

from __future__ import annotations

import pytest

from repro.binpack import (
    HEURISTICS,
    best_fit,
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    next_fit,
    worst_fit,
)
from repro.exceptions import InvalidInstanceError

ALL_PACKERS = list(HEURISTICS.values())


@pytest.mark.parametrize("packer", ALL_PACKERS, ids=list(HEURISTICS))
class TestAllPackersShared:
    """Invariants every packing heuristic must satisfy."""

    def test_packs_every_item_exactly_once(self, packer):
        result = packer([3, 1, 4, 1, 5, 9, 2, 6], 10)
        packed = sorted(i for b in result.bins for i in b)
        assert packed == list(range(8))

    def test_respects_capacity(self, packer):
        result = packer([7, 7, 7, 3, 3, 3], 10)
        assert all(load <= 10 for load in result.bin_loads())

    def test_single_item(self, packer):
        result = packer([5], 10)
        assert result.num_bins == 1
        assert result.bins == ((0,),)

    def test_items_exactly_filling_bins(self, packer):
        result = packer([10, 10, 10], 10)
        assert result.num_bins == 3

    def test_validate_passes(self, packer):
        result = packer([2, 9, 4, 4, 1, 8], 12)
        result.validate()

    def test_rejects_oversized_item(self, packer):
        with pytest.raises(InvalidInstanceError, match="exceeds bin capacity"):
            packer([5, 11], 10)

    def test_rejects_zero_size(self, packer):
        with pytest.raises(InvalidInstanceError):
            packer([5, 0], 10)

    def test_indices_refer_to_original_order(self, packer):
        sizes = [2, 9, 1]
        result = packer(sizes, 10)
        for bin_items in result.bins:
            for i in bin_items:
                assert sizes[i] == result.sizes[i]


class TestFirstFit:
    def test_uses_first_open_bin(self):
        # 6 then 3 fit together under FF; 5 opens bin 2.
        result = first_fit([6, 3, 5], 10)
        assert result.bins[0] == (0, 1)
        assert result.bins[1] == (2,)

    def test_algorithm_name(self):
        assert first_fit([1], 2).algorithm == "first_fit"


class TestFFD:
    def test_classic_ffd_example(self):
        # Sorted desc: 8 7 6 5 2 2 -> [8,2], [7,2], [6], [5]; the four
        # items above 5 are pairwise incompatible with each other except
        # via the 2s, so 4 bins is also optimal here.
        result = first_fit_decreasing([5, 7, 2, 8, 6, 2], 10)
        assert sum(result.bin_loads()) == 30
        assert result.num_bins == 4
        assert sorted(result.bin_loads(), reverse=True) == [10, 9, 6, 5]

    def test_ffd_beats_or_ties_ff_on_decreasing_adversary(self):
        sizes = [4, 4, 4, 6, 6, 6]
        assert (
            first_fit_decreasing(sizes, 10).num_bins
            <= first_fit(sizes, 10).num_bins
        )

    def test_perfect_packing_found(self):
        # Pairs summing to exactly 10.
        result = first_fit_decreasing([7, 3, 6, 4, 5, 5], 10)
        assert result.num_bins == 3
        assert all(load == 10 for load in result.bin_loads())


class TestBestFit:
    def test_prefers_tightest_bin(self):
        # After 7 and 5, a 3 should join the 7 (residual 3) not the 5.
        result = best_fit([7, 5, 3], 10)
        assert (0, 2) in result.bins

    def test_bfd_name(self):
        assert best_fit_decreasing([1], 2).algorithm == "best_fit_decreasing"


class TestNextFit:
    def test_never_reopens_closed_bin(self):
        # 6, then 5 closes bin 1, then 4: NF puts 4 with 5 (fits), not bin 1.
        result = next_fit([6, 5, 4], 10)
        assert result.bins == ((0,), (1, 2))

    def test_at_most_twice_optimal_on_halves(self):
        sizes = [5] * 10  # optimal = 5 bins of two
        assert next_fit(sizes, 10).num_bins == 5


class TestWorstFit:
    def test_prefers_emptiest_bin(self):
        # After 7 and 5, a 3 should join the 5 (residual 5) not the 7.
        result = worst_fit([7, 5, 3], 10)
        assert (1, 2) in result.bins

    def test_balances_loads(self):
        result = worst_fit([4, 4, 4, 4], 8)
        assert result.num_bins == 2
        assert result.bin_loads() == [8, 8]
