"""Tests for schema-driven execution: routing, capacity, and metrics."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.engine import canonical_meeting, execute_schema
from repro.engine.routing import a2a_memberships, x2y_memberships
from repro.exceptions import InvalidInstanceError


def collect_reduce(key, values):
    """Reducer that reports which input indices met at this reducer."""
    yield key, tuple(sorted(v[0] if len(v) == 2 else (v[0], v[1]) for v in values))


def pair_reduce_a2a(key, values):
    """Emit each A2A pair exactly once, from its canonical reducer."""
    indices = sorted(i for i, _ in values)
    for a_pos, i in enumerate(indices):
        for j in indices[a_pos + 1 :]:
            yield (i, j, key)


def cross_reduce_x2y(key, values):
    """Emit each X2Y cross pair from this reducer."""
    xs = sorted(i for side, i, _ in values if side == "x")
    ys = sorted(j for side, j, _ in values if side == "y")
    for i in xs:
        for j in ys:
            yield (i, j, key)


class TestA2AExecution:
    @pytest.fixture
    def schema(self, small_a2a):
        return solve_a2a(small_a2a).require_valid()

    def test_every_pair_meets_exactly_once_canonically(self, schema):
        records = [f"rec{i}" for i in range(schema.instance.m)]
        result = execute_schema(schema, records, pair_reduce_a2a)
        memberships = a2a_memberships(schema)
        canonical = {
            (i, j, canonical_meeting(memberships[i], memberships[j]))
            for i, j in schema.instance.pairs()
        }
        emitted_canonical = {
            (i, j, r)
            for i, j, r in result.outputs
            if canonical_meeting(memberships[i], memberships[j]) == r
        }
        assert emitted_canonical == canonical

    def test_replication_follows_schema(self, schema):
        records = [f"rec{i}" for i in range(schema.instance.m)]
        result = execute_schema(schema, records, collect_reduce)
        # Each input is shuffled to exactly its replication count of reducers.
        assert result.metrics.map_output_pairs == sum(schema.replication)

    def test_metrics_agree_with_schema_costs(self, schema):
        records = [f"rec{i}" for i in range(schema.instance.m)]
        result = execute_schema(schema, records, collect_reduce)
        assert result.metrics.communication_cost == schema.communication_cost
        assert result.metrics.max_reducer_load == schema.max_load
        nonempty = [members for members in schema.reducers if members]
        assert result.metrics.num_reducers == len(nonempty)
        # Per-reducer loads match the schema's load vector.
        for r, members in enumerate(schema.reducers):
            if members:
                assert result.metrics.reducer_loads[r] == schema.loads[r]

    def test_capacity_never_violated_for_valid_schema(self, schema):
        records = [f"rec{i}" for i in range(schema.instance.m)]
        result = execute_schema(schema, records, collect_reduce)
        assert result.metrics.capacity == schema.instance.q
        assert result.metrics.capacity_violations == ()

    def test_record_count_mismatch_rejected(self, schema):
        with pytest.raises(InvalidInstanceError, match="expects 5 records"):
            execute_schema(schema, ["only", "two"], collect_reduce)


class TestX2YExecution:
    @pytest.fixture
    def schema(self, small_x2y):
        return solve_x2y(small_x2y).require_valid()

    def test_every_cross_pair_meets(self, schema):
        x_records = [f"x{i}" for i in range(schema.instance.m)]
        y_records = [f"y{j}" for j in range(schema.instance.n)]
        result = execute_schema(schema, (x_records, y_records), cross_reduce_x2y)
        met = {(i, j) for i, j, _ in result.outputs}
        assert met == set(schema.instance.pairs())

    def test_metrics_agree_with_schema_costs(self, schema):
        x_records = [f"x{i}" for i in range(schema.instance.m)]
        y_records = [f"y{j}" for j in range(schema.instance.n)]
        result = execute_schema(schema, (x_records, y_records), cross_reduce_x2y)
        assert result.metrics.communication_cost == schema.communication_cost
        assert result.metrics.max_reducer_load == schema.max_load
        x_members, y_members = x2y_memberships(schema)
        expected_pairs = sum(len(m) for m in x_members) + sum(
            len(m) for m in y_members
        )
        assert result.metrics.map_output_pairs == expected_pairs

    def test_record_shape_rejected(self, schema):
        with pytest.raises(InvalidInstanceError, match="x_records, y_records"):
            execute_schema(schema, 7, cross_reduce_x2y)  # type: ignore[arg-type]

    def test_record_count_mismatch_rejected(self, schema):
        with pytest.raises(InvalidInstanceError, match="expects 3 X records"):
            execute_schema(schema, (["x0"], ["y0", "y1", "y2"]), cross_reduce_x2y)


class TestSchemaTypeDispatch:
    def test_non_schema_rejected(self):
        with pytest.raises(TypeError, match="A2ASchema or X2YSchema"):
            execute_schema("not a schema", [], collect_reduce)  # type: ignore[arg-type]

    def test_engine_metrics_present(self, small_a2a):
        schema = solve_a2a(small_a2a)
        records = [f"rec{i}" for i in range(schema.instance.m)]
        result = execute_schema(schema, records, collect_reduce, backend="threads")
        assert result.engine.backend == "threads"
        assert result.engine.num_map_tasks >= 1
        assert result.engine.timings.total_seconds >= 0.0
