"""CLI tests: ``repro serve`` / ``repro submit`` and atomic --json-out."""

from __future__ import annotations

import json
import os

import pytest

from repro import io as repro_io
from repro.cli import main


def _parse_ndjson(text: str) -> list[dict]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _write_requests(path, requests) -> str:
    path.write_text("".join(json.dumps(request) + "\n" for request in requests))
    return str(path)


class TestServe:
    def test_round_trips_spec_to_result(self, tmp_path, capsys):
        requests = [
            {
                "id": "j1",
                "spec": {"kind": "a2a", "q": 12, "sizes": [3, 5, 2, 7, 4]},
            },
            {
                "id": "j2",
                "spec": {"kind": "a2a", "q": 12, "sizes": [3, 5, 2, 7, 4]},
            },
        ]
        exit_code = main(
            ["serve", "--input", _write_requests(tmp_path / "jobs.ndjson", requests)]
        )
        assert exit_code == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        results = {
            line["id"]: line for line in lines if line["event"] == "result"
        }
        assert set(results) == {"j1", "j2"}
        for result in results.values():
            assert result["state"] == "done"
            assert result["outputs"] == result["num_reducers"] > 0
        # Same spec twice in one serve session: the second is a cache hit.
        assert [results["j1"]["cache_hit"], results["j2"]["cache_hit"]].count(
            True
        ) == 1
        # Status lines stream every lifecycle transition.
        j1_states = [
            line["state"]
            for line in lines
            if line["event"] == "status" and line.get("id") == "j1"
        ]
        assert j1_states == ["queued", "running", "done"]

    def test_plan_only_and_multiway_requests(self, tmp_path, capsys):
        requests = [
            {
                "id": "planned",
                "spec": {"kind": "x2y", "q": 9, "x_sizes": [4, 2], "y_sizes": [3, 3]},
                "execute": False,
            },
            {
                "id": "multi",
                "spec": {"kind": "multiway", "q": 9, "sizes": [2] * 6, "r": 3},
            },
        ]
        assert main(
            ["serve", "--quiet", "--input",
             _write_requests(tmp_path / "jobs.ndjson", requests)]
        ) == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        results = {line["id"]: line for line in lines if line["event"] == "result"}
        assert results["planned"]["state"] == "done"
        assert "outputs" not in results["planned"]
        assert results["multi"]["state"] == "done"
        assert results["multi"]["chosen"]

    def test_malformed_lines_do_not_abort_the_loop(self, tmp_path, capsys):
        path = tmp_path / "jobs.ndjson"
        path.write_text(
            "this is not json\n"
            + json.dumps({"no_spec": True}) + "\n"
            + json.dumps({"id": "bad-spec", "spec": {"kind": "nope", "q": 1}})
            + "\n"
            + json.dumps(
                {"id": "ok", "spec": {"kind": "a2a", "q": 9, "sizes": [3, 5]}}
            )
            + "\n"
        )
        assert main(["serve", "--quiet", "--input", str(path)]) == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        errors = [line for line in lines if line["event"] == "error"]
        assert len(errors) == 3
        assert errors[0]["line"] == 1
        results = [line for line in lines if line["event"] == "result"]
        assert len(results) == 1 and results[0]["id"] == "ok"

    def test_mistyped_request_fields_do_not_abort_the_loop(self, tmp_path, capsys):
        path = tmp_path / "jobs.ndjson"
        path.write_text(
            json.dumps(
                {
                    "id": "bad-priority",
                    "spec": {"kind": "a2a", "q": 9, "sizes": [3, 5]},
                    "priority": "urgent",
                }
            )
            + "\n"
            + json.dumps({"id": "scalar-sizes", "spec": {"kind": "a2a", "q": 9, "sizes": 5}})
            + "\n"
            + json.dumps(
                {"id": "ok", "spec": {"kind": "a2a", "q": 9, "sizes": [3, 5]}}
            )
            + "\n"
        )
        assert main(["serve", "--quiet", "--input", str(path)]) == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        errors = [line for line in lines if line["event"] == "error"]
        assert {error["line"] for error in errors} == {1, 2}
        results = [line for line in lines if line["event"] == "result"]
        assert len(results) == 1 and results[0]["id"] == "ok"

    def test_infeasible_spec_reports_failed_result(self, tmp_path, capsys):
        requests = [
            {"id": "doomed", "spec": {"kind": "a2a", "q": 5, "sizes": [3, 4]}}
        ]
        assert main(
            ["serve", "--quiet", "--input",
             _write_requests(tmp_path / "jobs.ndjson", requests)]
        ) == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        (result,) = [line for line in lines if line["event"] == "result"]
        assert result["state"] == "failed"
        assert "InfeasibleInstanceError" in result["error"]


class TestSubmit:
    def test_human_readable_summary(self, capsys):
        assert main(["submit", "--sizes", "3,5,2,7", "--q", "12"]) == 0
        out = capsys.readouterr().out
        assert "state     : done" in out
        assert "chosen    :" in out
        assert "outputs   :" in out

    def test_json_result_line(self, capsys):
        assert main(
            ["submit", "--sizes", "3,5,2,7", "--q", "12", "--json"]
        ) == 0
        (line,) = _parse_ndjson(capsys.readouterr().out)
        assert line["event"] == "result"
        assert line["state"] == "done"
        assert line["outputs"] == line["num_reducers"] > 0

    def test_plan_only_flag(self, capsys):
        assert main(
            ["submit", "--sizes", "3,5,2,7", "--q", "12", "--plan-only",
             "--json"]
        ) == 0
        (line,) = _parse_ndjson(capsys.readouterr().out)
        assert line["state"] == "done"
        assert "outputs" not in line

    def test_multiway_is_plan_only(self, capsys):
        assert main(
            ["submit", "--sizes", "2,2,2,2,2,2", "--q", "9", "--r", "3",
             "--json"]
        ) == 0
        (line,) = _parse_ndjson(capsys.readouterr().out)
        assert line["state"] == "done"
        assert "outputs" not in line

    def test_infeasible_submit_fails_with_result_line(self, capsys):
        assert main(["submit", "--sizes", "3,4", "--q", "5"]) == 1
        err = capsys.readouterr().err
        (line,) = _parse_ndjson(err)
        assert line["state"] == "failed"

    def test_missing_sizes_is_a_user_error(self, capsys):
        assert main(["submit", "--q", "5"]) == 1
        assert "submit needs --sizes" in capsys.readouterr().err


class TestAtomicJsonOut:
    def test_plan_json_out_is_complete_json(self, tmp_path, capsys):
        target = tmp_path / "plan.json"
        assert main(
            ["plan", "--sizes", "3,5,2,7", "--q", "12", "--json-out",
             str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["chosen"]
        # No temp-file litter in the target directory.
        assert os.listdir(tmp_path) == ["plan.json"]

    def test_bench_json_out_is_complete_json(self, tmp_path, capsys):
        target = tmp_path / "bench.json"
        assert main(
            ["bench", "--tuples", "60", "--scale", "0.05", "--backends",
             "serial", "--service-jobs", "3", "--json-out", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload["rows"]
        assert [row["mode"] for row in payload["service_rows"]] == [
            "sequential", "service",
        ]
        assert os.listdir(tmp_path) == ["bench.json"]

    def test_failed_replace_preserves_existing_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        target.write_text('{"precious": true}')

        def boom(src, dst):
            raise OSError("simulated crash at rename time")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            repro_io.atomic_write_text(str(target), '{"new": 1}')
        # The original content is intact and no temp file is left behind.
        assert json.loads(target.read_text()) == {"precious": True}
        assert os.listdir(tmp_path) == ["out.json"]

    def test_atomic_write_writes_full_content(self, tmp_path):
        target = tmp_path / "data.json"
        repro_io.atomic_write_text(str(target), '{"a": 1}\n')
        repro_io.atomic_write_text(str(target), '{"a": 2}\n')
        assert json.loads(target.read_text()) == {"a": 2}
        assert os.listdir(tmp_path) == ["data.json"]

    def test_atomic_write_uses_umask_permissions(self, tmp_path):
        # NamedTemporaryFile's private 0600 must not leak into artifacts:
        # the result should carry the same mode a plain open() would.
        target = tmp_path / "perms.json"
        repro_io.atomic_write_text(str(target), "{}\n")
        plain = tmp_path / "plain.json"
        plain.write_text("{}\n")
        assert (target.stat().st_mode & 0o777) == (plain.stat().st_mode & 0o777)
