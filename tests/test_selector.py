"""Unit tests for the algorithm-selection facade."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS, solve_a2a, solve_x2y
from repro.exceptions import InfeasibleInstanceError


class TestSolveA2A:
    def test_auto_picks_a_grouping_scheme_for_uniform(self, equal_a2a):
        schema = solve_a2a(equal_a2a)
        assert schema.algorithm in ("equal_grouping", "grouped_covering")
        assert schema.verify().valid

    def test_auto_uniform_never_worse_than_plain_grouping(self, equal_a2a):
        from repro.core.a2a import equal_sized_grouping

        schema = solve_a2a(equal_a2a)
        assert schema.num_reducers <= equal_sized_grouping(equal_a2a).num_reducers

    def test_auto_picks_big_small_with_bigs(self, big_a2a):
        schema = solve_a2a(big_a2a)
        assert schema.algorithm == "big_small"
        assert schema.verify().valid

    def test_auto_picks_bin_pairing_otherwise(self):
        instance = A2AInstance([3, 5, 2, 6, 4], 12)
        schema = solve_a2a(instance)
        assert schema.algorithm.startswith("bin_pairing")
        assert schema.verify().valid

    def test_named_method(self, small_a2a):
        schema = solve_a2a(small_a2a, method="greedy")
        assert schema.algorithm == "greedy_cover"

    def test_unknown_method(self, small_a2a):
        with pytest.raises(ValueError, match="unknown A2A method"):
            solve_a2a(small_a2a, method="magic")

    def test_infeasible_rejected_before_dispatch(self):
        with pytest.raises(InfeasibleInstanceError):
            solve_a2a(A2AInstance([8, 8], 12), method="greedy")

    def test_all_registered_methods_solve_a_small_instance(self):
        instance = A2AInstance([2, 3, 2, 3], 6)
        for name in A2A_METHODS:
            if name in ("equal_grouping", "grouped_covering"):
                continue  # require uniform sizes
            schema = solve_a2a(instance, method=name)
            assert schema.verify().valid, name


class TestSolveX2Y:
    def test_auto_picks_equal_grid_for_uniform(self):
        instance = X2YInstance.equal_sized(6, 2, 6, 3, 10)
        schema = solve_x2y(instance)
        assert schema.algorithm.startswith("equal_grid")
        assert schema.verify().valid

    def test_auto_with_bigs_takes_better_of_two_schemes(self):
        # A feasible X2Y instance can only have bigs on one side (two
        # inputs above q/2 that must meet would overflow q); auto builds
        # both general schemes and keeps the cheaper.
        instance = X2YInstance([9, 2], [8, 3], 17)
        schema = solve_x2y(instance)
        assert schema.verify().valid
        from repro.core.x2y import best_split_grid, big_small_x2y

        expected = min(
            big_small_x2y(instance).num_reducers,
            best_split_grid(instance).num_reducers,
        )
        assert schema.num_reducers == expected

    def test_auto_picks_best_split_otherwise(self, small_x2y):
        schema = solve_x2y(small_x2y)
        assert schema.algorithm.startswith("grid[")
        assert schema.verify().valid

    def test_named_method(self, small_x2y):
        schema = solve_x2y(small_x2y, method="greedy")
        assert schema.algorithm == "greedy_cover_x2y"

    def test_unknown_method(self, small_x2y):
        with pytest.raises(ValueError, match="unknown X2Y method"):
            solve_x2y(small_x2y, method="magic")

    def test_infeasible_rejected(self):
        with pytest.raises(InfeasibleInstanceError):
            solve_x2y(X2YInstance([8], [8], 12))

    def test_all_registered_methods_solve_a_small_instance(self):
        instance = X2YInstance([2, 3], [2, 3], 8)
        for name in X2Y_METHODS:
            if name in ("equal_grid",):
                continue  # requires uniform sides
            schema = solve_x2y(instance, method=name)
            assert schema.verify().valid, name
