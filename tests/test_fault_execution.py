"""Execution tests for the fault plane: injection, retry, recovery.

The contract under test is the tentpole guarantee: with a fixed seed and
pinned task geometry, a run under injected faults produces outputs
byte-identical to a fault-free run on every backend — including the
process backend surviving real worker deaths via pool rebuild and
in-flight task replay.

Map/reduce functions are module-level so they survive pickling on the
``processes`` backend.
"""

from __future__ import annotations

import time

import pytest

from repro.engine.backends import BACKENDS, ProcessBackend
from repro.engine.engine import ExecutionEngine
from repro.exceptions import (
    DeadlineExceededError,
    InjectedFaultError,
    TaskRetryExhaustedError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.faults import FaultSpec, RetryPolicy

#: Pinned geometry: identical task decomposition on every backend, so the
#: seeded injector's decisions hit the same (phase, task, attempt) cells.
GEOMETRY = dict(map_chunk_size=2, num_reduce_tasks=4)

#: Fast deterministic policy for tests (backoff in the low milliseconds).
POLICY = RetryPolicy(max_attempts=6, backoff_base=0.001, backoff_max=0.01)

RECORDS = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
    "a brown dog",
    "fox and dog and fox",
    "jumps over the lazy fox",
    "quick brown jumps",
    "dog and fox",
]


def word_map(record: str):
    for word in record.split():
        yield word, 1


def word_reduce(key, values):
    yield key, sum(values)


def slow_reduce(key, values):
    time.sleep(0.05)
    yield key, sum(values)


def angry_reduce(key, values):
    raise ValueError("user bug, not a fault")
    yield  # pragma: no cover


def _engine(backend, **kwargs):
    merged = dict(
        map_fn=word_map,
        reduce_fn=word_reduce,
        backend=backend,
        num_workers=2,
        **GEOMETRY,
    )
    merged.update(kwargs)
    return ExecutionEngine(**merged)


@pytest.fixture(scope="module")
def fault_free_outputs():
    return _engine("serial").run(RECORDS).outputs


class TestCrossBackendIdentity:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_crash_injection_is_invisible_in_outputs(
        self, backend, fault_free_outputs
    ):
        result = _engine(
            backend, retry=POLICY, faults="crash=0.3,seed=11"
        ).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.task_retries >= 1

    def test_retry_counts_identical_across_backends(self):
        # Determinism is stronger than identical outputs: every backend
        # must see the *same* injected failure scenario.
        retries = {
            backend: _engine(
                backend, retry=POLICY, faults="crash=0.3,seed=11"
            )
            .run(RECORDS)
            .engine.task_retries
            for backend in sorted(BACKENDS)
        }
        assert len(set(retries.values())) == 1, retries

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_kill_degrades_to_crash_off_process_backends(
        self, backend, fault_free_outputs
    ):
        result = _engine(
            backend, retry=POLICY, faults="kill=0.3,seed=5"
        ).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.task_retries >= 1
        assert result.engine.pool_rebuilds == 0


class TestWorkerDeathRecovery:
    def test_broken_pool_is_rebuilt_and_lost_tasks_replayed(
        self, fault_free_outputs
    ):
        backend = ProcessBackend(max_workers=2)
        with backend:
            result = _engine(
                backend, retry=POLICY, faults="kill=0.4,seed=3"
            ).run(RECORDS)
            assert result.outputs == fault_free_outputs
            assert result.engine.pool_rebuilds >= 1
            assert backend.pool_rebuilds >= 1
            # The healed persistent pool keeps serving plain runs.
            assert _engine(backend).run(RECORDS).outputs == (
                fault_free_outputs
            )

    def test_unrecoverable_worker_deaths_exhaust_with_context(self):
        result_error = None
        backend = ProcessBackend(max_workers=2)
        with backend:
            with pytest.raises(TaskRetryExhaustedError) as excinfo:
                _engine(
                    backend,
                    retry=RetryPolicy(
                        max_attempts=2, backoff_base=0.0, jitter=0.0
                    ),
                    faults="kill=1.0,seed=1",
                ).run(RECORDS)
            result_error = excinfo.value
        assert "lost to worker deaths" in str(result_error)
        assert isinstance(result_error.last_error, WorkerLostError)


class TestRetryBoundsAndClassification:
    def test_certain_crash_exhausts_after_max_attempts(self):
        with pytest.raises(TaskRetryExhaustedError) as excinfo:
            _engine(
                "serial",
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
                faults="crash=1.0,seed=1",
            ).run(RECORDS)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, InjectedFaultError)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_user_errors_propagate_unretried(self, backend):
        calls = []

        def counting_reduce(key, values):
            calls.append(key)
            raise ValueError("user bug, not a fault")

        reduce_fn = (
            angry_reduce if backend == "processes" else counting_reduce
        )
        with pytest.raises(ValueError, match="user bug"):
            _engine(
                backend, reduce_fn=reduce_fn, retry=POLICY
            ).run(RECORDS)
        if backend == "serial":
            # Each reduce task observed the error at most once (keys are
            # unique to their task's partition, so a repeated key would
            # mean a retry): the fault plane must not retry or mask a
            # non-retryable failure.
            assert len(set(calls)) == len(calls)
            assert len(calls) <= GEOMETRY["num_reduce_tasks"]

    def test_transient_faults_are_recovered(self, fault_free_outputs):
        result = _engine(
            "serial", retry=POLICY, faults="transient=0.3,seed=2"
        ).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.task_retries >= 1


class TestTimeoutsAndDeadlines:
    def test_task_timeout_abandons_and_exhausts(self):
        # Every attempt is delayed past the timeout, so the task is
        # abandoned max_attempts times and retries are exhausted with the
        # timeout as the underlying error.
        with pytest.raises(TaskRetryExhaustedError) as excinfo:
            _engine(
                "threads",
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=0.0, jitter=0.0
                ),
                faults="delay=1.0:0.3,seed=1",
                task_timeout=0.05,
            ).run(RECORDS)
        assert isinstance(excinfo.value.last_error, TaskTimeoutError)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_deadline_bounds_the_run(self, backend):
        with pytest.raises(DeadlineExceededError):
            _engine(
                backend, reduce_fn=slow_reduce, deadline=0.01
            ).run(RECORDS)

    def test_deadline_not_cured_by_retry(self):
        # The policy would retry timeouts, but a blown deadline is final.
        with pytest.raises(DeadlineExceededError):
            _engine(
                "serial",
                reduce_fn=slow_reduce,
                retry=POLICY,
                deadline=0.01,
            ).run(RECORDS)


class TestFallbackChain:
    def test_pool_construction_failure_falls_back(
        self, monkeypatch, fault_free_outputs
    ):
        def broken_pool(self):
            raise OSError("no more processes")

        monkeypatch.setattr(ProcessBackend, "_make_pool", broken_pool)
        result = _engine("processes", fallback=True).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.backend in ("threads", "serial")
        assert result.engine.fallback_backend == result.engine.backend

    def test_without_opt_in_the_failure_propagates(self, monkeypatch):
        def broken_pool(self):
            raise OSError("no more processes")

        monkeypatch.setattr(ProcessBackend, "_make_pool", broken_pool)
        with pytest.raises(OSError, match="no more processes"):
            _engine("processes").run(RECORDS)


class TestFaultPlaneOffIsPlainPath:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_no_knobs_no_counters(self, backend, fault_free_outputs):
        result = _engine(backend).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.task_retries == 0
        assert result.engine.pool_rebuilds == 0
        assert result.engine.fallback_backend is None

    def test_noop_spec_stays_on_plain_path(self, fault_free_outputs):
        # A parsed spec with all-zero rates must not arm the fault plane.
        result = _engine("serial", faults=FaultSpec(seed=9)).run(RECORDS)
        assert result.outputs == fault_free_outputs
        assert result.engine.task_retries == 0
