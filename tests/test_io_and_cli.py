"""Tests for JSON serialization and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.exceptions import InvalidInstanceError
from repro.io import (
    dumps,
    instance_from_dict,
    instance_to_dict,
    loads,
    schema_from_dict,
    schema_to_dict,
)


class TestInstanceSerialization:
    def test_a2a_roundtrip(self, small_a2a):
        restored = instance_from_dict(instance_to_dict(small_a2a))
        assert restored == small_a2a

    def test_x2y_roundtrip(self, small_x2y):
        restored = instance_from_dict(instance_to_dict(small_x2y))
        assert restored == small_x2y

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown instance kind"):
            instance_from_dict({"kind": "triangle"})

    def test_bad_payload_revalidated(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"kind": "a2a", "sizes": [0], "q": 5})


class TestSchemaSerialization:
    def test_a2a_schema_roundtrip(self, small_a2a):
        schema = solve_a2a(small_a2a)
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored == schema
        assert restored.verify().valid

    def test_x2y_schema_roundtrip(self, small_x2y):
        schema = solve_x2y(small_x2y)
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored == schema

    def test_dumps_loads_string_roundtrip(self, small_a2a):
        schema = solve_a2a(small_a2a)
        text = dumps(schema)
        restored = loads(text)
        assert restored == schema

    def test_loads_dispatches_instance_vs_schema(self, small_a2a):
        assert loads(dumps(small_a2a)) == small_a2a

    def test_loads_rejects_non_object(self):
        with pytest.raises(InvalidInstanceError):
            loads("[1, 2, 3]")

    def test_payload_is_plain_json(self, small_a2a):
        payload = json.loads(dumps(solve_a2a(small_a2a)))
        assert payload["kind"] == "a2a"
        assert isinstance(payload["reducers"], list)


class TestCli:
    def test_solve_a2a_ok(self, capsys):
        rc = main(["solve-a2a", "--sizes", "3,5,2,7", "--q", "12"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reducers" in out

    def test_solve_a2a_json_output_parses(self, capsys):
        rc = main(["solve-a2a", "--sizes", "3,5,2", "--q", "10", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["kind"] == "a2a"

    def test_solve_a2a_infeasible_exits_one(self, capsys):
        rc = main(["solve-a2a", "--sizes", "8,8", "--q", "12"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error" in err

    def test_solve_x2y_ok(self, capsys):
        rc = main(
            ["solve-x2y", "--x-sizes", "4,5", "--y-sizes", "3,3", "--q", "10"]
        )
        assert rc == 0
        assert "reducers" in capsys.readouterr().out

    def test_named_method(self, capsys):
        rc = main(
            ["solve-a2a", "--sizes", "2,3,2,3", "--q", "6", "--method", "greedy"]
        )
        assert rc == 0
        assert "greedy_cover" in capsys.readouterr().out

    def test_sweep(self, capsys):
        rc = main(["sweep", "--sizes", "2,3,2,3,4", "--q-values", "10,20"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lower_bound" in out

    def test_verify_valid_file(self, tmp_path, capsys):
        schema = solve_a2a(A2AInstance([3, 5, 2], 10))
        path = tmp_path / "schema.json"
        path.write_text(dumps(schema))
        rc = main(["verify", "--file", str(path)])
        assert rc == 0
        assert "valid" in capsys.readouterr().out

    def test_verify_invalid_file_exits_one(self, tmp_path, capsys):
        # Hand-craft a schema missing coverage.
        instance = A2AInstance([1, 1, 1], 4)
        payload = {
            "kind": "a2a",
            "instance": instance_to_dict(instance),
            "algorithm": "broken",
            "reducers": [[0, 1]],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        rc = main(["verify", "--file", str(path)])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "solve-a2a", "--sizes", "2,3", "--q", "6"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "reducers" in result.stdout
