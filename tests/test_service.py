"""Tests for the job service layer: scheduler, caches, lifecycle, crossval."""

from __future__ import annotations

import threading
import time
from functools import partial

import pytest

from repro.apps.similarity_join import (
    _similarity_reduce,
    run_similarity_join,
    similarity_spec,
)
from repro.engine.config import ExecutionConfig
from repro.engine.routing import a2a_meeting_table
from repro.exceptions import (
    AdmissionError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    JobCancelledError,
    ResultEvictedError,
)
from repro.planner import Environment, JobSpec, plan, plan_fingerprint
from repro.service import (
    CANCELLED,
    CANCELLING,
    DONE,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    JobService,
    PlanCache,
    ResultStore,
)
from repro.service.results import JobResult
from repro.service.service import collect_reduce, spec_records
from repro.workloads.documents import all_pairs_above, generate_documents

#: A tiny spec used by jobs whose outputs are irrelevant.
SMALL_SPEC = JobSpec.a2a([3, 5, 2, 7, 4], q=12)

#: Deterministic environment so plans (and fingerprints) are stable.
ENV = Environment(num_workers=2, memory_bytes=1 << 30)

SERIAL = ExecutionConfig(backend="serial")


def _await(predicate, timeout=5.0, interval=0.005):
    """Poll *predicate* until true (returns False on timeout)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class _Gate:
    """A reduce-side gate: jobs block until the test releases them."""

    def __init__(self):
        self.event = threading.Event()
        self.entered = threading.Semaphore(0)

    def reduce(self, key, values):
        self.entered.release()
        assert self.event.wait(10.0), "test gate never released"
        yield key, len(values)


class TestSchedulerFairness:
    def test_eight_jobs_two_slots_priority_fifo(self):
        gate = _Gate()
        with JobService(slots=2, env=ENV) as service:
            blockers = [
                service.submit(
                    SMALL_SPEC,
                    records=spec_records(SMALL_SPEC),
                    reduce_fn=gate.reduce,
                    config=SERIAL,
                    job_id=f"blocker-{i}",
                )
                for i in range(2)
            ]
            # Both slots are busy before any test job is submitted.
            assert gate.entered.acquire(timeout=5.0)
            assert gate.entered.acquire(timeout=5.0)

            priorities = [2, 0, 1, 0, 2, 1, 0, 1]
            handles = [
                service.submit_spec(
                    SMALL_SPEC, priority=priority, job_id=f"t{index}"
                )
                for index, priority in enumerate(priorities)
            ]
            # With the slots occupied, every submission is observably queued.
            assert [h.status().state for h in handles] == [QUEUED] * 8
            assert service.scheduler.queued_count == 8

            gate.event.set()
            for handle in blockers + handles:
                assert handle.wait(timeout=30.0).state == DONE

            dispatched = [
                job_id
                for job_id in service.scheduler.dispatch_order
                if not job_id.startswith("blocker-")
            ]
            # Priority first, then strict submission (FIFO) order within a
            # priority level: that is the fairness contract.
            expected = [
                f"t{index}"
                for index, _ in sorted(
                    enumerate(priorities), key=lambda item: (item[1], item[0])
                )
            ]
            assert dispatched == expected
            # All eight completed with correct results.
            for handle in handles:
                assert handle.result().outputs

    def test_same_priority_is_submission_order(self):
        gate = _Gate()
        with JobService(slots=1, env=ENV) as service:
            service.submit(
                SMALL_SPEC,
                records=spec_records(SMALL_SPEC),
                reduce_fn=gate.reduce,
                config=SERIAL,
                job_id="blocker",
            )
            assert gate.entered.acquire(timeout=5.0)
            handles = [
                service.submit_spec(SMALL_SPEC, job_id=f"fifo-{i}")
                for i in range(4)
            ]
            gate.event.set()
            for handle in handles:
                assert handle.wait(timeout=30.0).state == DONE
        assert service.scheduler.dispatch_order == [
            "blocker", "fifo-0", "fifo-1", "fifo-2", "fifo-3",
        ]


class TestCancel:
    def test_cancel_queued_job_never_runs(self):
        gate = _Gate()
        with JobService(slots=1, env=ENV) as service:
            service.submit(
                SMALL_SPEC,
                records=spec_records(SMALL_SPEC),
                reduce_fn=gate.reduce,
                config=SERIAL,
                job_id="blocker",
            )
            assert gate.entered.acquire(timeout=5.0)
            queued = service.submit_spec(SMALL_SPEC, job_id="queued-victim")
            assert queued.status().state == QUEUED

            assert queued.cancel() is True
            assert queued.status().state == CANCELLED
            with pytest.raises(JobCancelledError):
                queued.result(timeout=1.0)

            gate.event.set()
            service.drain(timeout=30.0)
            assert "queued-victim" not in service.scheduler.dispatch_order
            # Terminal: a second cancel is a no-op.
            assert queued.cancel() is False

    def test_cancel_running_job_discards_result(self):
        gate = _Gate()
        with JobService(slots=1, env=ENV) as service:
            running = service.submit(
                SMALL_SPEC,
                records=spec_records(SMALL_SPEC),
                reduce_fn=gate.reduce,
                config=SERIAL,
                job_id="running-victim",
            )
            assert gate.entered.acquire(timeout=5.0)
            assert running.status().state == RUNNING

            assert running.cancel() is True
            assert running.status().state == CANCELLING

            gate.event.set()
            status = running.wait(timeout=30.0)
            assert status.state == CANCELLED
            assert service.results.get("running-victim") is None
            with pytest.raises(JobCancelledError):
                running.result(timeout=1.0)

    def test_close_without_drain_terminalizes_queued_jobs(self):
        gate = _Gate()
        service = JobService(slots=1, env=ENV)
        service.submit(
            SMALL_SPEC,
            records=spec_records(SMALL_SPEC),
            reduce_fn=gate.reduce,
            config=SERIAL,
            job_id="blocker",
        )
        assert gate.entered.acquire(timeout=5.0)
        stranded = service.submit_spec(SMALL_SPEC, job_id="stranded")
        # Close while the only worker is provably inside the blocker: the
        # queued job can never be dispatched.
        service.close(drain=False, timeout=0.2)
        # The abandoned job is terminal, so result()/wait() callers
        # unblock instead of hanging on a job no worker will ever run.
        assert stranded.status().state == CANCELLED
        with pytest.raises(JobCancelledError):
            stranded.result(timeout=1.0)
        # Release the worker; its late blocker result is discarded.
        gate.event.set()
        assert _await(lambda: service.scheduler.running_count == 0)
        assert service.results.get("blocker") is None

    def test_cancel_finished_job_returns_false(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit_spec(SMALL_SPEC)
            assert handle.wait(timeout=30.0).state == DONE
            assert handle.cancel() is False


class TestPlanCache:
    def test_cache_hit_returns_byte_identical_plan(self):
        spec = JobSpec.a2a([3, 5, 2, 7, 4, 6], q=13, method=None)
        with JobService(slots=2, env=ENV) as service:
            first = service.submit_spec(spec)
            result_one = first.result(timeout=30.0)
            second = service.submit_spec(spec)
            result_two = second.result(timeout=30.0)
        assert result_one.cache_hit is False
        assert result_two.cache_hit is True
        assert result_two.plan is result_one.plan
        assert result_two.plan.to_json() == result_one.plan.to_json()
        assert result_one.fingerprint == plan_fingerprint(spec, ENV)
        assert service.plan_cache.stats()["hits"] == 1

    def test_cache_aware_plan_function(self):
        cache = PlanCache(capacity=8)
        spec = JobSpec.a2a([4, 4, 4, 4], q=9, method=None)
        first = plan(spec, ENV, cache=cache)
        second = plan(spec, ENV, cache=cache)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_environments_do_not_collide(self):
        spec = JobSpec.a2a([3, 5, 2], q=9)
        other_env = Environment(num_workers=4, memory_bytes=1 << 30)
        assert plan_fingerprint(spec, ENV) != plan_fingerprint(spec, other_env)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        specs = [JobSpec.a2a([i + 2, 3], q=9) for i in range(3)]
        plans = [plan(spec, ENV) for spec in specs]
        keys = [plan_fingerprint(spec, ENV) for spec in specs]
        cache.put(keys[0], plans[0])
        cache.put(keys[1], plans[1])
        assert cache.get(keys[0]) is plans[0]  # refresh key 0
        cache.put(keys[2], plans[2])  # evicts key 1 (LRU)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is plans[0]
        assert cache.evictions == 1

    def test_fingerprint_is_content_based(self):
        a = JobSpec.a2a([3, 5, 2], q=9)
        b = JobSpec.a2a([3, 5, 2], q=9)
        c = JobSpec.a2a([3, 5, 2], q=9, objective="min-communication")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestResultStore:
    def test_lru_eviction_keeps_status(self):
        with JobService(slots=1, env=ENV, result_capacity=2) as service:
            handles = [
                service.submit_spec(SMALL_SPEC, job_id=f"evict-{i}")
                for i in range(3)
            ]
            for handle in handles:
                assert handle.wait(timeout=30.0).state == DONE
        assert service.results.evictions == 1
        assert service.results.get("evict-0") is None
        with pytest.raises(ResultEvictedError):
            service.result("evict-0")
        # Status survives eviction; later results are still fetchable.
        assert service.status("evict-0").state == DONE
        assert service.result("evict-2").outputs

    def test_unknown_job_is_a_key_error(self):
        store = ResultStore(capacity=2)
        with pytest.raises(KeyError):
            store.fetch("nope")

    def test_store_accounting(self):
        store = ResultStore(capacity=1)
        plan_obj = plan(SMALL_SPEC, ENV)
        for index in range(2):
            store.put(
                JobResult(
                    job_id=f"r{index}",
                    plan=plan_obj,
                    fingerprint="x",
                    cache_hit=False,
                )
            )
        assert store.stats() == {"size": 1, "capacity": 1, "evictions": 1}
        assert "r1" in store and "r0" not in store


class TestAdmissionControl:
    def test_oversubscribed_workers_rejected(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit(
                SMALL_SPEC,
                config=ExecutionConfig(backend="threads", num_workers=64),
            )
            status = handle.status()
            assert status.state == REJECTED
            assert "schedulable core" in status.detail
            with pytest.raises(AdmissionError):
                handle.result(timeout=1.0)
            assert handle.cancel() is False

    def test_oversized_input_rejected(self):
        small_env = Environment(num_workers=2, memory_bytes=1 << 20)
        big_spec = JobSpec.a2a([3000, 3000], q=10_000)
        with JobService(slots=1, env=small_env) as service:
            handle = service.submit(big_spec)
            assert handle.status().state == REJECTED
            assert "available memory" in handle.status().detail

    def test_oversized_memory_budget_rejected(self):
        small_env = Environment(num_workers=2, memory_bytes=1 << 20)
        with JobService(slots=1, env=small_env) as service:
            handle = service.submit(
                SMALL_SPEC,
                config=ExecutionConfig(
                    backend="threads", num_workers=2, memory_budget=4096
                ),
            )
            assert handle.status().state == REJECTED
            assert "memory_budget" in handle.status().detail

    def test_fitting_job_admitted(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit_spec(
                SMALL_SPEC, config=ExecutionConfig(backend="serial")
            )
            assert handle.wait(timeout=30.0).state == DONE


class TestLifecycleAndStats:
    def test_plan_only_job(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit(SMALL_SPEC)
            result = handle.result(timeout=30.0)
        assert result.outputs is None
        assert result.executed is False
        assert result.plan.chosen
        assert "outputs" not in result.summary()

    def test_failed_job_raises_original_exception(self):
        # Inputs 0 and 1 together exceed q: no schema can cover the pair.
        infeasible = JobSpec.a2a([3, 4], q=5)
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit(infeasible)
            status = handle.wait(timeout=30.0)
            assert status.state == FAILED
            assert "InfeasibleInstanceError" in status.error
            with pytest.raises(InfeasibleInstanceError):
                handle.result(timeout=1.0)

    def test_event_history_covers_lifecycle(self):
        with JobService(slots=1, env=ENV) as service:
            handle = service.submit_spec(SMALL_SPEC, job_id="evented")
            handle.wait(timeout=30.0)
            states = [
                event.state for event in service.events.snapshot("evented")
            ]
        assert states == [QUEUED, RUNNING, DONE]

    def test_list_in_submission_order(self):
        with JobService(slots=2, env=ENV) as service:
            for index in range(3):
                service.submit_spec(SMALL_SPEC, job_id=f"list-{index}")
            service.drain(timeout=30.0)
            listed = service.list()
        assert [status.job_id for status in listed] == [
            "list-0", "list-1", "list-2",
        ]
        assert all(status.state == DONE for status in listed)

    def test_stats_report_shared_pools_and_caches(self):
        with JobService(slots=2, env=ENV) as service:
            for _ in range(3):
                # Sequential waits keep the hit accounting deterministic.
                handle = service.submit_spec(
                    SMALL_SPEC,
                    config=ExecutionConfig(backend="threads", num_workers=2),
                )
                assert handle.wait(timeout=30.0).state == DONE
            stats = service.stats()
        # Three jobs shared ONE threads pool — the service owns it.
        assert stats["backend_pools"] == {"threads@2": 1}
        assert stats["jobs"] == {DONE: 3}
        assert stats["plan_cache"]["hits"] == 2

    def test_records_without_reduce_fn_rejected(self):
        with JobService(slots=1, env=ENV) as service:
            with pytest.raises(InvalidInstanceError):
                service.submit(SMALL_SPEC, records=["a"])

    def test_duplicate_job_id_rejected(self):
        with JobService(slots=1, env=ENV) as service:
            service.submit_spec(SMALL_SPEC, job_id="dup")
            with pytest.raises(InvalidInstanceError):
                service.submit_spec(SMALL_SPEC, job_id="dup")

    def test_submit_after_close_raises(self):
        service = JobService(slots=1, env=ENV)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit_spec(SMALL_SPEC)

    def test_unknown_job_id(self):
        with JobService(slots=1, env=ENV) as service:
            with pytest.raises(KeyError):
                service.status("ghost")


class TestCrossValidation:
    """A service-executed job must match the direct one-shot app path."""

    THRESHOLD = 0.2
    Q = 60

    def test_similarity_spec_job_matches_direct_path(self):
        documents = generate_documents(24, self.Q, seed=21)
        direct = run_similarity_join(documents, self.Q, self.THRESHOLD)

        spec = similarity_spec(documents, self.Q)
        with JobService(slots=2, env=ENV) as service:
            planned = plan(spec, service.env)
            owners = a2a_meeting_table(planned.schema())
            handle = service.submit(
                spec,
                records=documents,
                reduce_fn=partial(
                    _similarity_reduce,
                    owners=owners,
                    threshold=self.THRESHOLD,
                ),
                config=ExecutionConfig(backend="threads", num_workers=2),
            )
            result = handle.result(timeout=60.0)

        assert tuple(result.outputs) == direct.pairs
        assert {(a, b) for a, b, _ in result.outputs} == all_pairs_above(
            documents, self.THRESHOLD
        )
        # The analytical job metrics agree with the simulator's run.
        assert result.metrics.communication_cost == (
            direct.metrics.communication_cost
        )
        assert result.metrics.num_reducers == direct.metrics.num_reducers

    def test_spec_records_jobs_match_one_shot_runs(self):
        specs = [
            JobSpec.a2a([3, 5, 2, 7, 4, 6], q=13, method=None),
            JobSpec.x2y([4, 2, 3], [5, 3], q=9, method=None),
        ]
        with JobService(slots=2, env=ENV) as service:
            handles = [service.submit_spec(spec) for spec in specs]
            served = [h.result(timeout=30.0) for h in handles]
        for spec, result in zip(specs, served):
            planned = plan(spec, ENV)
            from repro.planner import run as run_plan

            direct = run_plan(
                planned, spec_records(spec), collect_reduce,
                config=planned.execution,
            )
            assert sorted(result.outputs) == sorted(direct.outputs)
