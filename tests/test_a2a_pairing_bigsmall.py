"""Unit tests for the A2A bin-pairing and big/small schemes."""

from __future__ import annotations

import pytest

from repro.binpack import best_fit_decreasing, next_fit
from repro.core.a2a.big_small import big_small, split_big_small
from repro.core.a2a.ffd_pairing import ffd_pairing, pair_bins
from repro.core.bounds import a2a_reducer_lower_bound
from repro.core.instance import A2AInstance
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


class TestPairBins:
    def test_two_bins_one_reducer(self):
        assert pair_bins([[0, 1], [2]]) == [[0, 1, 2]]

    def test_three_bins_three_reducers(self):
        assert len(pair_bins([[0], [1], [2]])) == 3

    def test_single_bin_yields_single_reducer(self):
        assert pair_bins([[0, 1, 2]]) == [[0, 1, 2]]


class TestFFDPairing:
    def test_valid_on_mixed_sizes(self):
        instance = A2AInstance([3, 5, 2, 6, 4], 12)  # all <= q//2
        schema = ffd_pairing(instance)
        assert schema.verify().valid

    def test_rejects_big_inputs(self):
        instance = A2AInstance([7, 2, 3], 12)  # 7 > 6 = q//2
        with pytest.raises(InvalidInstanceError, match="big/small"):
            ffd_pairing(instance)

    def test_single_input(self):
        schema = ffd_pairing(A2AInstance([3], 12))
        assert schema.num_reducers == 1

    def test_reducer_count_is_bin_pairs(self):
        # Unit sizes, q=4: bins of capacity 2 -> 3 bins -> C(3,2)=3 reducers.
        instance = A2AInstance([1] * 6, 4)
        schema = ffd_pairing(instance)
        assert schema.num_reducers == 3

    def test_custom_packer(self):
        instance = A2AInstance([3, 5, 2, 6, 4], 12)
        schema = ffd_pairing(instance, packer=best_fit_decreasing)
        assert schema.verify().valid
        assert "best_fit_decreasing" in schema.algorithm

    def test_loads_bounded_by_q(self):
        instance = A2AInstance([3, 5, 2, 6, 4], 12)
        schema = ffd_pairing(instance)
        assert schema.max_load <= instance.q

    def test_odd_capacity_uses_floor_half(self):
        # q=13 -> bins of 6; two inputs of 6 cannot share a bin.
        instance = A2AInstance([6, 6], 13)
        schema = ffd_pairing(instance)
        assert schema.verify().valid

    def test_within_constant_factor_of_bound(self):
        sizes = [1, 2, 3, 4, 5, 6, 7, 8] * 4
        instance = A2AInstance(sizes, 32)
        schema = ffd_pairing(instance)
        assert schema.verify().valid
        bound = a2a_reducer_lower_bound(instance)
        # The pairing scheme's reducer count is C(b,2) where b is within
        # 11/9 of optimal packing; allow a generous constant for small b.
        assert schema.num_reducers <= 6 * bound + 3


class TestSplitBigSmall:
    def test_split_threshold_is_half_q(self, big_a2a):
        big, small = split_big_small(big_a2a)
        assert big == [0]  # only 10 > 9 = 19//2
        assert 1 in small  # 9 <= 9 is small

    def test_one_big_in_mixed_fixture(self, small_a2a):
        big, small = split_big_small(small_a2a)
        assert big == [3]  # size 7 > 6 = 12//2
        assert len(small) == 4


class TestBigSmall:
    def test_valid_with_bigs(self, big_a2a):
        schema = big_small(big_a2a)
        assert schema.verify().valid

    def test_valid_without_bigs_matches_pairing_validity(self, small_a2a):
        schema = big_small(small_a2a)
        assert schema.verify().valid

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            big_small(A2AInstance([10, 10, 1], 19))

    def test_single_input(self):
        schema = big_small(A2AInstance([7], 10))
        assert schema.num_reducers == 1

    def test_two_bigs_only(self):
        instance = A2AInstance([7, 8], 15)
        schema = big_small(instance)
        assert schema.verify().valid
        assert schema.num_reducers == 1

    def test_one_big_many_smalls(self):
        instance = A2AInstance([9, 2, 2, 2, 2, 2], 12)
        schema = big_small(instance)
        assert schema.verify().valid
        # Big has residual 3 -> needs ceil(10/3)=4 bins just for big-small.
        assert schema.num_reducers >= 4

    def test_all_bigs(self):
        instance = A2AInstance([6, 6, 6, 6], 12)
        schema = big_small(instance)
        assert schema.verify().valid

    def test_loads_bounded(self, big_a2a):
        schema = big_small(big_a2a)
        assert schema.max_load <= big_a2a.q

    def test_custom_packer(self, big_a2a):
        schema = big_small(big_a2a, packer=next_fit)
        assert schema.verify().valid

    def test_dominated_reducers_pruned(self):
        # With one big and smalls that fit in one residual bin, the
        # small-small reducer may be subsumed; no reducer is a subset of
        # another in the output.
        instance = A2AInstance([9, 2, 2], 14)
        schema = big_small(instance)
        sets = [frozenset(r) for r in schema.reducers]
        for a in range(len(sets)):
            for b in range(len(sets)):
                if a != b:
                    assert not sets[a] < sets[b]
