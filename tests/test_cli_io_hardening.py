"""Hardening tests: CLI size-list edge cases, verify error paths, io strictness."""

from __future__ import annotations

import json

import pytest

from repro.cli import _absorb_size_values, main
from repro.core.instance import A2AInstance
from repro.core.selector import solve_a2a
from repro.exceptions import InvalidInstanceError
from repro.io import dumps, instance_from_dict, loads, schema_from_dict


class TestSizeListParsing:
    """Negative/zero/empty size lists must die with the validator's
    message, not argparse's opaque "expected one argument"."""

    def test_negative_sizes_a2a(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-a2a", "--sizes", "-3,5", "--q", "10"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be positive" in err
        assert "expected one argument" not in err

    def test_negative_sizes_x2y_both_sides(self, capsys):
        for flag, value in (("--x-sizes", "-4,5"), ("--y-sizes", "-1,2")):
            args = {
                "--x-sizes": "4,5",
                "--y-sizes": "3,3",
                flag: value,
            }
            with pytest.raises(SystemExit) as excinfo:
                main(
                    [
                        "solve-x2y",
                        "--x-sizes",
                        args["--x-sizes"],
                        "--y-sizes",
                        args["--y-sizes"],
                        "--q",
                        "10",
                    ]
                )
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "must be positive" in err
            assert "expected one argument" not in err

    def test_zero_sizes_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-a2a", "--sizes", "0,5", "--q", "10"])
        assert excinfo.value.code == 2
        assert "must be positive" in capsys.readouterr().err

    def test_empty_size_list_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-a2a", "--sizes", ",", "--q", "10"])
        assert excinfo.value.code == 2
        assert "at least one integer" in capsys.readouterr().err

    def test_negative_q_values_in_sweep(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--sizes", "2,3", "--q-values", "-10,20"])
        assert excinfo.value.code == 2
        assert "must be positive" in capsys.readouterr().err

    def test_garbage_size_list_still_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["solve-a2a", "--sizes", "3,banana", "--q", "10"])
        assert excinfo.value.code == 2
        assert "bad size list" in capsys.readouterr().err

    def test_absorb_only_rewrites_numeric_values(self):
        assert _absorb_size_values(["--sizes", "-3,5"]) == ["--sizes=-3,5"]
        # A following option must not be eaten.
        assert _absorb_size_values(["--sizes", "--q"]) == ["--sizes", "--q"]
        # Already-glued and positive forms pass through.
        assert _absorb_size_values(["--sizes=-3,5"]) == ["--sizes=-3,5"]
        assert _absorb_size_values(["--sizes", "3,5"]) == ["--sizes", "3,5"]

    def test_positive_path_still_works(self, capsys):
        assert main(["solve-a2a", "--sizes", "3,5,2", "--q", "10"]) == 0
        assert "reducers" in capsys.readouterr().out


class TestVerifyErrorPaths:
    def test_verify_bad_json_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json at all")
        assert main(["verify", "--file", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_verify_missing_file_exits_one(self, tmp_path, capsys):
        assert main(["verify", "--file", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_verify_valid_roundtrip_still_ok(self, tmp_path, capsys):
        schema = solve_a2a(A2AInstance([3, 5, 2], 10))
        path = tmp_path / "schema.json"
        path.write_text(dumps(schema))
        assert main(["verify", "--file", str(path)]) == 0


class TestIoStrictness:
    def test_unknown_version_rejected(self):
        with pytest.raises(InvalidInstanceError, match="format version"):
            instance_from_dict(
                {"version": 99, "kind": "a2a", "sizes": [1], "q": 4}
            )
        with pytest.raises(InvalidInstanceError, match="format version"):
            schema_from_dict(
                {
                    "version": "2.0",
                    "kind": "a2a",
                    "instance": {"kind": "a2a", "sizes": [1], "q": 4},
                    "reducers": [[0]],
                }
            )

    def test_missing_version_still_accepted(self):
        restored = instance_from_dict({"kind": "a2a", "sizes": [2, 3], "q": 6})
        assert restored == A2AInstance([2, 3], 6)

    def test_missing_fields_raise_invalid_instance_not_keyerror(self):
        with pytest.raises(InvalidInstanceError, match="missing 'sizes'"):
            instance_from_dict({"kind": "a2a", "q": 5})
        with pytest.raises(InvalidInstanceError, match="missing 'q'"):
            instance_from_dict({"kind": "a2a", "sizes": [1, 2]})
        with pytest.raises(InvalidInstanceError, match="missing 'x_sizes'"):
            instance_from_dict({"kind": "x2y", "y_sizes": [1], "q": 5})
        with pytest.raises(InvalidInstanceError, match="missing 'instance'"):
            schema_from_dict({"kind": "a2a", "reducers": [[0]]})

    def test_mistyped_fields_raise_invalid_instance(self):
        with pytest.raises(InvalidInstanceError, match="list of integers"):
            instance_from_dict({"kind": "a2a", "sizes": "3,5", "q": 5})
        with pytest.raises(InvalidInstanceError, match="list of integers"):
            instance_from_dict({"kind": "a2a", "sizes": [1, True], "q": 5})
        with pytest.raises(InvalidInstanceError, match="must be an integer"):
            instance_from_dict({"kind": "a2a", "sizes": [1, 2], "q": "5"})
        with pytest.raises(InvalidInstanceError, match="must be a list"):
            schema_from_dict(
                {
                    "kind": "a2a",
                    "instance": {"kind": "a2a", "sizes": [1, 1], "q": 4},
                    "reducers": "nope",
                }
            )

    def test_malformed_x2y_reducers_wrapped(self):
        with pytest.raises(InvalidInstanceError):
            schema_from_dict(
                {
                    "kind": "x2y",
                    "instance": {
                        "kind": "x2y",
                        "x_sizes": [2],
                        "y_sizes": [2],
                        "q": 5,
                    },
                    "reducers": [{"x": [0]}],  # missing "y"
                }
            )

    def test_non_dict_payloads_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict([1, 2, 3])
        with pytest.raises(InvalidInstanceError):
            schema_from_dict("schema")

    def test_loads_wraps_json_decode_error(self):
        with pytest.raises(InvalidInstanceError, match="not valid JSON"):
            loads("{oops")

    def test_kind_mismatch_between_schema_and_instance(self):
        with pytest.raises(InvalidInstanceError, match="non-x2y instance"):
            schema_from_dict(
                {
                    "kind": "x2y",
                    "instance": {"kind": "a2a", "sizes": [1, 1], "q": 4},
                    "reducers": [],
                }
            )

    def test_roundtrip_unchanged(self):
        schema = solve_a2a(A2AInstance([3, 5, 2, 4], 10))
        assert loads(dumps(schema)) == schema
        payload = json.loads(dumps(schema))
        assert payload["version"] == 1
