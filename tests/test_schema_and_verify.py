"""Unit tests for mapping schemas and their verification."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.exceptions import InvalidSchemaError


def make_valid_a2a_schema():
    instance = A2AInstance([3, 3, 3], 9)
    return A2ASchema.from_lists(instance, [[0, 1, 2]], algorithm="manual")


class TestA2ASchema:
    def test_valid_single_reducer(self):
        schema = make_valid_a2a_schema()
        report = schema.verify()
        assert report.valid
        assert report.num_reducers == 1

    def test_loads_and_costs(self):
        instance = A2AInstance([3, 5, 2], 10)
        schema = A2ASchema.from_lists(instance, [[0, 1], [0, 2], [1, 2]])
        assert schema.loads == (8, 5, 7)
        assert schema.communication_cost == 20
        assert schema.max_load == 8

    def test_replication_counts(self):
        instance = A2AInstance([1, 1, 1], 4)
        schema = A2ASchema.from_lists(instance, [[0, 1], [0, 2]])
        assert schema.replication == (2, 1, 1)

    def test_reducers_of(self):
        instance = A2AInstance([1, 1, 1], 4)
        schema = A2ASchema.from_lists(instance, [[0, 1], [0, 2], [1, 2]])
        assert schema.reducers_of(0) == (0, 1)

    def test_from_lists_dedupes_and_sorts(self):
        instance = A2AInstance([1, 1], 4)
        schema = A2ASchema.from_lists(instance, [[1, 0, 1]])
        assert schema.reducers == ((0, 1),)

    def test_capacity_violation_detected(self):
        instance = A2AInstance([6, 6], 12)
        overloaded = A2ASchema.from_lists(instance, [[0, 1], [0, 1, 0]])
        # second reducer dedupes to the same pair; craft a real overflow:
        instance2 = A2AInstance([6, 6, 6], 12)
        bad = A2ASchema.from_lists(instance2, [[0, 1, 2]])
        report = bad.verify()
        assert not report.valid
        assert report.capacity_violations == ((0, 18),)
        assert overloaded.verify().valid

    def test_uncovered_pair_detected(self):
        instance = A2AInstance([1, 1, 1], 4)
        partial = A2ASchema.from_lists(instance, [[0, 1]])
        report = partial.verify()
        assert not report.valid
        assert (0, 2) in report.uncovered_pairs
        assert (1, 2) in report.uncovered_pairs

    def test_require_valid_raises_with_report(self):
        instance = A2AInstance([1, 1, 1], 4)
        partial = A2ASchema.from_lists(instance, [[0, 1]], algorithm="bad")
        with pytest.raises(InvalidSchemaError) as excinfo:
            partial.require_valid()
        assert excinfo.value.report is not None
        assert not excinfo.value.report.valid

    def test_require_valid_returns_self(self):
        schema = make_valid_a2a_schema()
        assert schema.require_valid() is schema

    def test_single_input_schema(self):
        instance = A2AInstance([5], 5)
        schema = A2ASchema.from_lists(instance, [[0]])
        assert schema.verify().valid

    def test_empty_schema_invalid_for_multi_input(self):
        instance = A2AInstance([1, 1], 4)
        schema = A2ASchema.from_lists(instance, [])
        assert not schema.verify().valid

    def test_report_summary_strings(self):
        good = make_valid_a2a_schema().verify()
        assert "valid" in good.summary()
        instance = A2AInstance([1, 1], 4)
        bad = A2ASchema.from_lists(instance, []).verify()
        assert "INVALID" in bad.summary()


class TestX2YSchema:
    def test_valid_grid(self, small_x2y):
        schema = X2YSchema.from_lists(
            small_x2y,
            [((0, 1, 2), (j,)) for j in range(3)],
        )
        # loads: (4+5+6) + y_j = 15 + up to 7 > 14 -> invalid; use per-pair.
        report = schema.verify()
        assert not report.valid  # capacity breaks on the big y

    def test_valid_per_pair_schema(self, small_x2y):
        schema = X2YSchema.from_lists(
            small_x2y,
            [((i,), (j,)) for i in range(3) for j in range(3)],
        )
        report = schema.verify()
        assert report.valid
        assert report.num_reducers == 9

    def test_uncovered_cross_pair(self, small_x2y):
        schema = X2YSchema.from_lists(small_x2y, [((0,), (0,))])
        report = schema.verify()
        assert not report.valid
        assert (0, 1) in report.uncovered_pairs

    def test_loads_sum_both_sides(self):
        instance = X2YInstance([2, 3], [4], 9)
        schema = X2YSchema.from_lists(instance, [((0, 1), (0,))])
        assert schema.loads == (9,)

    def test_replication_both_sides(self):
        instance = X2YInstance([2, 3], [4], 9)
        schema = X2YSchema.from_lists(instance, [((0,), (0,)), ((1,), (0,))])
        x_rep, y_rep = schema.replication
        assert x_rep == (1, 1)
        assert y_rep == (2,)

    def test_communication_cost(self):
        instance = X2YInstance([2, 3], [4], 9)
        schema = X2YSchema.from_lists(instance, [((0,), (0,)), ((1,), (0,))])
        assert schema.communication_cost == 2 + 4 + 3 + 4

    def test_require_valid_raises(self, small_x2y):
        schema = X2YSchema.from_lists(small_x2y, [])
        with pytest.raises(InvalidSchemaError):
            schema.require_valid()
