"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.utils.rng import make_rng
from repro.workloads.distributions import (
    SIZE_PROFILES,
    bimodal_sizes,
    constant_sizes,
    normal_sizes,
    sample_sizes,
    uniform_sizes,
    zipf_sizes,
)
from repro.workloads.documents import (
    all_pairs_above,
    generate_documents,
    jaccard,
)
from repro.workloads.relations import (
    generate_join_workload,
    generate_skewed_relation,
    heavy_hitters,
    zipf_key_sequence,
)
from repro.workloads.vectors import dense_outer_product, generate_block_vector


class TestDistributions:
    def test_constant(self):
        assert constant_sizes(3, 5) == [5, 5, 5]

    def test_uniform_in_range(self):
        sizes = uniform_sizes(200, 3, 9, seed=0)
        assert all(3 <= s <= 9 for s in sizes)
        assert len(sizes) == 200

    def test_uniform_reproducible(self):
        assert uniform_sizes(20, 1, 10, seed=5) == uniform_sizes(20, 1, 10, seed=5)

    def test_zipf_clipped_and_positive(self):
        sizes = zipf_sizes(500, alpha=1.3, max_size=50, seed=1)
        assert all(1 <= s <= 50 for s in sizes)

    def test_zipf_is_heavy_tailed(self):
        sizes = zipf_sizes(2000, alpha=1.3, max_size=10**6, seed=2)
        # Substantial mass at 1-2 (about 36% for alpha=1.3), yet some very
        # large draws exist: the heavy-tail signature.
        assert sum(1 for s in sizes if s <= 2) > len(sizes) / 4
        assert max(sizes) > 100

    def test_zipf_rejects_alpha_at_most_one(self):
        with pytest.raises(InvalidInstanceError):
            zipf_sizes(10, alpha=1.0)

    def test_normal_clipped_at_one(self):
        sizes = normal_sizes(500, mean=2, stdev=5, seed=3)
        assert all(s >= 1 for s in sizes)

    def test_bimodal_has_two_modes(self):
        sizes = bimodal_sizes(
            1000, small_mean=10, big_mean=200, big_fraction=0.2, seed=4
        )
        big = [s for s in sizes if s > 100]
        assert 100 < len(big) < 300  # ~20%

    def test_bimodal_fraction_bounds(self):
        with pytest.raises(InvalidInstanceError):
            bimodal_sizes(10, big_fraction=1.5)

    def test_sample_sizes_all_profiles(self):
        for profile in SIZE_PROFILES:
            sizes = sample_sizes(profile, 50, q=100, seed=0)
            assert len(sizes) == 50
            assert all(1 <= s <= 100 for s in sizes)

    def test_sample_sizes_unknown_profile(self):
        with pytest.raises(InvalidInstanceError, match="unknown size profile"):
            sample_sizes("cauchy", 10, 100)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(InvalidInstanceError):
            uniform_sizes(0)
        with pytest.raises(InvalidInstanceError):
            constant_sizes(-1)


class TestDocuments:
    def test_generation_shape(self):
        docs = generate_documents(10, 60, seed=0)
        assert len(docs) == 10
        assert all(d.size == len(d.tokens) for d in docs)
        assert [d.doc_id for d in docs] == list(range(10))

    def test_reproducible(self):
        a = generate_documents(5, 40, seed=9)
        b = generate_documents(5, 40, seed=9)
        assert [d.tokens for d in a] == [d.tokens for d in b]

    def test_jaccard_identical(self):
        docs = generate_documents(2, 40, seed=0)
        assert jaccard(docs[0], docs[0]) == 1.0

    def test_jaccard_disjoint(self):
        from repro.workloads.documents import Document

        a = Document(0, ("x",))
        b = Document(1, ("y",))
        assert jaccard(a, b) == 0.0

    def test_jaccard_symmetric(self):
        docs = generate_documents(2, 40, seed=1)
        assert jaccard(docs[0], docs[1]) == jaccard(docs[1], docs[0])

    def test_all_pairs_above_threshold_zero_is_all_pairs(self):
        docs = generate_documents(6, 40, seed=2)
        assert len(all_pairs_above(docs, 0.0)) == 15

    def test_all_pairs_above_high_threshold_empty_or_few(self):
        docs = generate_documents(6, 40, seed=2, vocabulary_size=10_000)
        assert len(all_pairs_above(docs, 0.99)) == 0


class TestRelations:
    def test_zipf_keys_in_range(self):
        keys = zipf_key_sequence(100, 10, 1.0, make_rng(0))
        assert all(0 <= k < 10 for k in keys)

    def test_zero_skew_roughly_uniform(self):
        keys = zipf_key_sequence(10_000, 10, 0.0, make_rng(1))
        counts = [keys.count(k) for k in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_high_skew_concentrates_on_key_zero(self):
        keys = zipf_key_sequence(10_000, 10, 2.0, make_rng(2))
        assert keys.count(0) > len(keys) / 2

    def test_relation_generation(self):
        rel = generate_skewed_relation("X", 50, 5, 1.0, seed=3)
        assert len(rel) == 50
        assert all(t.size == 1 for t in rel.tuples)

    def test_size_jitter(self):
        rel = generate_skewed_relation(
            "X", 200, 5, 0.0, tuple_size=2, size_jitter=3, seed=4
        )
        assert all(2 <= t.size <= 5 for t in rel.tuples)

    def test_key_loads_match_counts_for_unit_sizes(self):
        rel = generate_skewed_relation("X", 100, 5, 1.0, seed=5)
        assert rel.key_loads() == dict(rel.key_counts())

    def test_join_workload_shared_key_space(self):
        x, y = generate_join_workload(100, 100, 8, 1.0, seed=6)
        assert len(x) == 100 and len(y) == 100
        assert {t.key for t in x.tuples} <= set(range(8))

    def test_heavy_hitters_detection(self):
        x, y = generate_join_workload(500, 500, 5, 1.5, seed=7)
        heavy = heavy_hitters(x, y, q=50)
        assert 0 in heavy  # key 0 dominates under skew 1.5
        loads_x, loads_y = x.key_loads(), y.key_loads()
        for k in heavy:
            assert loads_x.get(k, 0) + loads_y.get(k, 0) > 50

    def test_heavy_hitters_empty_when_capacity_large(self):
        x, y = generate_join_workload(50, 50, 5, 0.5, seed=8)
        assert heavy_hitters(x, y, q=10_000) == []

    def test_tuples_for(self):
        rel = generate_skewed_relation("X", 30, 3, 0.0, seed=9)
        for key in range(3):
            assert all(t.key == key for t in rel.tuples_for(key))


class TestVectors:
    def test_generation_shape(self):
        vec = generate_block_vector("u", 5, 40, seed=0)
        assert len(vec.blocks) == 5
        assert vec.dimension == sum(b.size for b in vec.blocks)

    def test_offsets_contiguous(self):
        vec = generate_block_vector("u", 4, 40, seed=1)
        expected = 0
        for block in vec.blocks:
            assert block.offset == expected
            expected += block.size

    def test_dense_roundtrip(self):
        vec = generate_block_vector("u", 3, 40, seed=2)
        dense = vec.dense()
        assert len(dense) == vec.dimension
        assert dense[vec.blocks[1].offset] == vec.blocks[1].values[0]

    def test_dense_outer_product_shape(self):
        u = generate_block_vector("u", 2, 20, seed=3)
        v = generate_block_vector("v", 3, 20, seed=4)
        matrix = dense_outer_product(u, v)
        assert len(matrix) == u.dimension
        assert len(matrix[0]) == v.dimension

    def test_outer_product_values(self):
        u = generate_block_vector("u", 2, 20, seed=5)
        v = generate_block_vector("v", 2, 20, seed=6)
        matrix = dense_outer_product(u, v)
        du, dv = u.dense(), v.dense()
        assert matrix[1][2] == pytest.approx(du[1] * dv[2])
