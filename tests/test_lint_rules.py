"""Per-rule behaviour against the golden fixtures and targeted snippets."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import load_module, run_rules
from repro.analysis.lint.rules import (
    DeterminismRule,
    ExceptionTaxonomyRule,
    LockDisciplineRule,
    PickleSafetyRule,
    all_rules,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_fixture(name, rule):
    info = load_module(FIXTURES / name)
    findings, _ = run_rules(info, [rule])
    return findings


def lint_source(tmp_path, source, rule, module_path="repro/engine/mod.py"):
    path = tmp_path / module_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    info = load_module(path, root=tmp_path)
    findings, _ = run_rules(info, [rule])
    return findings


class TestDeterminismRule:
    def test_positive_fixture_flags_every_entropy_source(self):
        findings = lint_fixture("pos_determinism.py", DeterminismRule())
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 5
        assert "`random` module" in messages
        assert "time.time" in messages
        assert "uuid.uuid4" in messages
        assert "os.environ" in messages
        assert "iterating a set" in messages

    def test_negative_fixture_is_clean(self):
        assert lint_fixture("neg_determinism.py", DeterminismRule()) == []

    def test_aliased_import_still_caught(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import random as rnd\nx = rnd.random()\n",
            DeterminismRule(),
        )
        assert [f.rule for f in findings] == ["determinism"]

    def test_from_import_still_caught(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from time import time\nnow = time()\n",
            DeterminismRule(),
        )
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_set_literal_iteration_caught_sorted_allowed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "out = [k for k in {1, 2, 3}]\nok = [k for k in sorted({1, 2})]\n",
            DeterminismRule(),
        )
        assert len(findings) == 1
        assert findings[0].line == 1

    def test_set_difference_iteration_caught(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(a, b):\n    return [k for k in set(a) - set(b)]\n",
            DeterminismRule(),
        )
        assert len(findings) == 1


class TestPickleSafetyRule:
    def test_positive_fixture_flags_lambda_nested_and_capture(self):
        findings = lint_fixture("pos_pickle_safety.py", PickleSafetyRule())
        messages = [f.message for f in findings]
        assert len(findings) == 3
        assert any("lambda" in m for m in messages)
        assert any("not importable by name" in m for m in messages)
        assert any(
            "closes over unpicklable state (lock)" in m for m in messages
        )

    def test_negative_fixture_is_clean(self):
        assert lint_fixture("neg_pickle_safety.py", PickleSafetyRule()) == []

    def test_partial_of_lambda_caught(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from functools import partial\n"
            "def go(backend, items):\n"
            "    return backend.run_tasks(partial(lambda x, k: x * k, k=2),"
            " items)\n",
            PickleSafetyRule(),
        )
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_keyword_fn_argument_checked(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def go(backend, items):\n"
            "    return backend.run_tasks(fn=lambda x: x, tasks=items)\n",
            PickleSafetyRule(),
        )
        assert len(findings) == 1

    def test_module_level_name_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def task(x):\n"
            "    return x\n"
            "def go(backend, items):\n"
            "    return backend.run_tasks(task, items)\n",
            PickleSafetyRule(),
        )
        assert findings == []


class TestExceptionTaxonomyRule:
    def test_positive_fixture_flags_each_builtin(self):
        findings = lint_fixture(
            "pos_exception_taxonomy.py", ExceptionTaxonomyRule()
        )
        raised = sorted(f.message for f in findings)
        assert len(findings) == 3
        assert any("ValueError" in m for m in raised)
        assert any("RuntimeError" in m for m in raised)
        assert any("KeyError" in m for m in raised)

    def test_negative_fixture_is_clean(self):
        assert (
            lint_fixture("neg_exception_taxonomy.py", ExceptionTaxonomyRule())
            == []
        )

    def test_only_execution_layers_in_scope(self, tmp_path):
        source = "def f():\n    raise ValueError('nope')\n"
        in_scope = lint_source(
            tmp_path, source, ExceptionTaxonomyRule(), "repro/service/x.py"
        )
        out_of_scope = lint_source(
            tmp_path, source, ExceptionTaxonomyRule(), "repro/core/x.py"
        )
        assert len(in_scope) == 1
        assert out_of_scope == []

    def test_bare_builtin_without_call_caught(self, tmp_path):
        findings = lint_source(
            tmp_path, "def f():\n    raise RuntimeError\n",
            ExceptionTaxonomyRule(),
        )
        assert len(findings) == 1


class TestLockDisciplineRule:
    def test_positive_fixture_flags_each_blocking_call(self):
        findings = lint_fixture(
            "pos_lock_discipline.py", LockDisciplineRule()
        )
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 4
        assert ".result()" in messages
        assert "join()" in messages
        assert "time.sleep" in messages
        assert "open" in messages

    def test_negative_fixture_is_clean(self):
        assert (
            lint_fixture("neg_lock_discipline.py", LockDisciplineRule()) == []
        )

    def test_deferred_body_under_lock_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "class S:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            return lambda fut: fut.result()\n",
            LockDisciplineRule(),
        )
        assert findings == []

    def test_non_lock_context_manager_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(pool, fut):\n"
            "    with pool:\n"
            "        return fut.result()\n",
            LockDisciplineRule(),
        )
        assert findings == []

    def test_string_join_not_flagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(self, parts):\n"
            "    with self._lock:\n"
            "        return ', '.join(parts)\n",
            LockDisciplineRule(),
        )
        assert findings == []


def test_every_rule_has_catalogue_metadata():
    for rule in all_rules():
        assert rule.rule_id
        assert rule.description
        assert rule.severity in ("info", "warning", "error")
        assert isinstance(rule.scopes, tuple)
