"""Tests for the combiner support and heterogeneous-worker scheduling."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.mapreduce.cluster import schedule_loads
from repro.mapreduce.job import MapReduceJob


def word_count_with_combiner():
    """Word count where each record (line) pre-aggregates its own counts."""
    return MapReduceJob(
        map_fn=lambda line: ((word, 1) for word in line.split()),
        reduce_fn=lambda word, counts: [(word, sum(counts))],
        combiner_fn=lambda word, counts: [sum(counts)],
        size_of=lambda value: 1,
    )


class TestCombiner:
    def test_results_unchanged(self):
        with_combiner = word_count_with_combiner().run(["a b a a", "b a"])
        without = MapReduceJob(
            map_fn=lambda line: ((w, 1) for w in line.split()),
            reduce_fn=lambda w, counts: [(w, sum(counts))],
            size_of=lambda value: 1,
        ).run(["a b a a", "b a"])
        assert dict(with_combiner.outputs) == dict(without.outputs)

    def test_communication_reduced(self):
        records = ["a a a a b", "a a b b b"]
        combined = word_count_with_combiner().run(records)
        plain = MapReduceJob(
            map_fn=lambda line: ((w, 1) for w in line.split()),
            reduce_fn=lambda w, counts: [(w, sum(counts))],
            size_of=lambda value: 1,
        ).run(records)
        # Each record emits one pair per distinct word instead of per word.
        assert combined.metrics.map_output_pairs == 4
        assert plain.metrics.map_output_pairs == 10
        assert (
            combined.metrics.communication_cost < plain.metrics.communication_cost
        )

    def test_reducer_loads_shrink(self):
        records = ["a a a a a a"]
        combined = word_count_with_combiner().run(records)
        assert combined.metrics.reducer_loads["a"] == 1

    def test_combiner_can_keep_capacity(self):
        # Without combining the reducer overflows q=2; with it, fits.
        records = ["a a a", "a a a"]
        job = word_count_with_combiner()
        job.reducer_capacity = 2
        result = job.run(records)
        assert result.metrics.capacity_violations == ()

    def test_combiner_emitting_multiple_values(self):
        job = MapReduceJob(
            map_fn=lambda n: [("k", n), ("k", n + 1)],
            reduce_fn=lambda k, vs: [sorted(vs)],
            combiner_fn=lambda k, vs: [min(vs), max(vs)],
            size_of=lambda value: 1,
        )
        result = job.run([10])
        assert result.outputs == [[10, 11]]


class TestHeterogeneousWorkers:
    def test_fast_worker_attracts_work(self):
        # One worker 3x faster: single task goes to it.
        result = schedule_loads([9], 2, worker_speeds=[1.0, 3.0])
        assert result.makespan == pytest.approx(3.0)

    def test_equal_speeds_match_default(self):
        default = schedule_loads([4, 3, 3, 2, 2], 2)
        explicit = schedule_loads([4, 3, 3, 2, 2], 2, worker_speeds=[1.0, 1.0])
        assert default.makespan == explicit.makespan

    def test_heterogeneous_balances_by_finish_time(self):
        # Speeds 1 and 2: total 12 should split ~4 / ~8 in load terms.
        result = schedule_loads([2] * 6, 2, worker_speeds=[1.0, 2.0])
        # Fast worker processes twice the load in the same time.
        assert result.makespan <= 5.0

    def test_rejects_wrong_length(self):
        with pytest.raises(InvalidInstanceError, match="entries"):
            schedule_loads([1], 2, worker_speeds=[1.0])

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(InvalidInstanceError, match="positive"):
            schedule_loads([1], 2, worker_speeds=[1.0, 0.0])

    def test_makespan_never_worse_than_slowest_homogeneous(self):
        loads = [5, 4, 3, 2, 1]
        hetero = schedule_loads(loads, 3, worker_speeds=[1.0, 2.0, 4.0])
        slow = schedule_loads(loads, 3, worker_speeds=[1.0, 1.0, 1.0])
        assert hetero.makespan <= slow.makespan
