"""Unit tests for the cost/tradeoff metrics."""

from __future__ import annotations

import pytest

from repro.core.costs import parallelism_degree, skew, summarize
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema


@pytest.fixture
def three_reducer_schema():
    instance = A2AInstance([3, 5, 2], 10)
    return A2ASchema.from_lists(
        instance, [[0, 1], [0, 2], [1, 2]], algorithm="manual"
    )


class TestSummarize:
    def test_counts(self, three_reducer_schema):
        cost = summarize(three_reducer_schema)
        assert cost.num_reducers == 3
        assert cost.communication_cost == 20

    def test_replication_rate(self, three_reducer_schema):
        cost = summarize(three_reducer_schema)
        assert cost.replication_rate == pytest.approx(20 / 10)

    def test_load_stats(self, three_reducer_schema):
        cost = summarize(three_reducer_schema)
        assert cost.max_load == 8
        assert cost.mean_load == pytest.approx(20 / 3)

    def test_capacity_utilization(self, three_reducer_schema):
        cost = summarize(three_reducer_schema)
        assert cost.capacity_utilization == pytest.approx(20 / 3 / 10)

    def test_algorithm_propagated(self, three_reducer_schema):
        assert summarize(three_reducer_schema).algorithm == "manual"

    def test_as_row_is_flat_dict(self, three_reducer_schema):
        row = summarize(three_reducer_schema).as_row()
        assert row["num_reducers"] == 3
        assert isinstance(row, dict)

    def test_works_on_x2y(self):
        instance = X2YInstance([2], [3], 5)
        schema = X2YSchema.from_lists(instance, [((0,), (0,))])
        cost = summarize(schema)
        assert cost.num_reducers == 1
        assert cost.communication_cost == 5
        assert cost.replication_rate == pytest.approx(1.0)


class TestSkewAndParallelism:
    def test_parallelism_is_reducer_count(self, three_reducer_schema):
        assert parallelism_degree(three_reducer_schema) == 3

    def test_skew_balanced(self):
        instance = A2AInstance([2, 2, 2], 4)
        schema = A2ASchema.from_lists(instance, [[0, 1], [0, 2], [1, 2]])
        assert skew(schema) == pytest.approx(1.0)

    def test_skew_unbalanced(self, three_reducer_schema):
        assert skew(three_reducer_schema) == pytest.approx(8 / (20 / 3))
