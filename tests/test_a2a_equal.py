"""Unit tests for the equal-sized A2A grouping scheme."""

from __future__ import annotations

import pytest

from repro.core.a2a.equal import (
    equal_sized_grouping,
    equal_sized_reducer_count,
    group_inputs,
    inputs_per_reducer,
)
from repro.core.bounds import a2a_equal_sized_reducer_bound
from repro.core.instance import A2AInstance
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


class TestGroupInputs:
    def test_even_split(self):
        assert group_inputs(6, 2) == [(0, 1), (2, 3), (4, 5)]

    def test_ragged_tail(self):
        assert group_inputs(5, 2) == [(0, 1), (2, 3), (4,)]

    def test_group_larger_than_m(self):
        assert group_inputs(3, 10) == [(0, 1, 2)]

    def test_rejects_nonpositive_group(self):
        with pytest.raises(InvalidInstanceError):
            group_inputs(5, 0)


class TestInputsPerReducer:
    def test_k_value(self, equal_a2a):
        assert inputs_per_reducer(equal_a2a) == 4

    def test_rejects_mixed_sizes(self, small_a2a):
        with pytest.raises(InvalidInstanceError, match="identical sizes"):
            inputs_per_reducer(small_a2a)


class TestEqualSizedGrouping:
    def test_produces_valid_schema(self, equal_a2a):
        schema = equal_sized_grouping(equal_a2a)
        assert schema.verify().valid

    def test_single_reducer_when_all_fit(self):
        instance = A2AInstance.equal_sized(4, 2, 8)
        schema = equal_sized_grouping(instance)
        assert schema.num_reducers == 1

    def test_single_input(self):
        instance = A2AInstance.equal_sized(1, 5, 5)
        schema = equal_sized_grouping(instance)
        assert schema.num_reducers == 1
        assert schema.verify().valid

    def test_infeasible_when_k_is_one(self):
        instance = A2AInstance.equal_sized(3, 5, 7)  # k = 1
        with pytest.raises(InfeasibleInstanceError):
            equal_sized_grouping(instance)

    def test_k_equals_two_gives_all_pairs(self):
        instance = A2AInstance.equal_sized(5, 3, 6)  # k = 2, groups of 1
        schema = equal_sized_grouping(instance)
        assert schema.num_reducers == 10  # C(5,2)
        assert schema.verify().valid

    def test_reducer_count_matches_closed_form(self, equal_a2a):
        schema = equal_sized_grouping(equal_a2a)
        k = inputs_per_reducer(equal_a2a)
        assert schema.num_reducers == equal_sized_reducer_count(equal_a2a.m, k)

    def test_within_factor_of_lower_bound_even_k(self):
        # k even: the scheme is within ~2x + rounding of the pair bound.
        for m, w, q in [(16, 1, 4), (40, 2, 16), (64, 5, 40), (100, 1, 10)]:
            instance = A2AInstance.equal_sized(m, w, q)
            schema = equal_sized_grouping(instance)
            assert schema.verify().valid
            k = q // w
            bound = a2a_equal_sized_reducer_bound(m, k)
            assert schema.num_reducers <= 3 * bound + 2, (m, k)

    def test_loads_never_exceed_q(self):
        instance = A2AInstance.equal_sized(30, 3, 13)  # k = 4, odd remainder
        schema = equal_sized_grouping(instance)
        assert schema.max_load <= instance.q

    def test_rejects_mixed_sizes(self, small_a2a):
        with pytest.raises(InvalidInstanceError):
            equal_sized_grouping(small_a2a)

    def test_odd_k_still_valid(self):
        instance = A2AInstance.equal_sized(20, 2, 10)  # k = 5
        schema = equal_sized_grouping(instance)
        assert schema.verify().valid


class TestClosedFormCount:
    def test_small_cases(self):
        assert equal_sized_reducer_count(1, 4) == 1
        assert equal_sized_reducer_count(4, 4) == 1
        assert equal_sized_reducer_count(0, 4) == 0

    def test_grouped_case(self):
        # m=20, k=4 -> groups of 2 -> t=10 -> C(10,2) = 45.
        assert equal_sized_reducer_count(20, 4) == 45

    def test_infeasible_k(self):
        with pytest.raises(InfeasibleInstanceError):
            equal_sized_reducer_count(5, 1)
