"""Integration tests: skew join on the simulator."""

from __future__ import annotations

import pytest

from repro.apps.skew_join import hash_join, naive_join, schema_skew_join
from repro.workloads.relations import (
    Relation,
    Tuple2,
    generate_join_workload,
    heavy_hitters,
)


@pytest.fixture
def skewed_workload():
    return generate_join_workload(300, 300, 10, 1.2, seed=21)


class TestNaiveJoin:
    def test_cross_product_per_key(self):
        x = Relation("X", (Tuple2(1, 100), Tuple2(1, 101)))
        y = Relation("Y", (Tuple2(1, 200), Tuple2(2, 201)))
        assert naive_join(x, y) == {(100, 1, 200), (101, 1, 200)}

    def test_disjoint_keys_empty(self):
        x = Relation("X", (Tuple2(1, 0),))
        y = Relation("Y", (Tuple2(2, 0),))
        assert naive_join(x, y) == set()


class TestHashJoin:
    def test_correct_output(self, skewed_workload):
        x, y = skewed_workload
        run = hash_join(x, y, q=60)
        assert run.triple_set() == naive_join(x, y)

    def test_heavy_hitter_overloads_reducer(self, skewed_workload):
        x, y = skewed_workload
        run = hash_join(x, y, q=60)
        assert run.metrics.max_reducer_load > 60
        assert len(run.metrics.capacity_violations) >= 1

    def test_reducers_equal_active_keys(self, skewed_workload):
        x, y = skewed_workload
        run = hash_join(x, y, q=60)
        active = {t.key for t in x.tuples} | {t.key for t in y.tuples}
        assert run.metrics.num_reducers == len(active)


class TestSchemaSkewJoin:
    def test_correct_output(self, skewed_workload):
        x, y = skewed_workload
        run = schema_skew_join(x, y, q=60)
        assert run.triple_set() == naive_join(x, y)

    def test_exactly_once(self, skewed_workload):
        x, y = skewed_workload
        run = schema_skew_join(x, y, q=60)
        assert len(run.triples) == len(run.triple_set())

    def test_every_reducer_within_capacity(self, skewed_workload):
        x, y = skewed_workload
        run = schema_skew_join(x, y, q=60)
        assert run.metrics.max_reducer_load <= 60
        assert run.metrics.capacity_violations == ()

    def test_detects_heavy_keys(self, skewed_workload):
        x, y = skewed_workload
        run = schema_skew_join(x, y, q=60)
        assert run.heavy_keys == tuple(heavy_hitters(x, y, 60))
        assert len(run.heavy_keys) >= 1

    def test_schemas_are_valid(self, skewed_workload):
        x, y = skewed_workload
        run = schema_skew_join(x, y, q=60)
        for schema in run.schemas.values():
            assert schema.verify().valid

    def test_no_skew_reduces_to_hash_join_behaviour(self):
        x, y = generate_join_workload(60, 60, 30, 0.0, seed=22)
        run = schema_skew_join(x, y, q=200)
        assert run.heavy_keys == ()
        assert run.triple_set() == naive_join(x, y)

    def test_one_sided_heavy_key_produces_no_output(self):
        # Key 5 heavy in X only: no Y partners -> no join rows, no shipping.
        x = Relation("X", tuple(Tuple2(5, i) for i in range(50)))
        y = Relation("Y", (Tuple2(1, 900),))
        run = schema_skew_join(x, y, q=20)
        assert run.triple_set() == set()
        assert run.metrics.max_reducer_load <= 20

    def test_different_sized_tuples(self):
        x, y = generate_join_workload(
            150, 150, 6, 1.2, tuple_size=2, size_jitter=3, seed=23
        )
        run = schema_skew_join(x, y, q=80)
        assert run.triple_set() == naive_join(x, y)
        assert run.metrics.max_reducer_load <= 80

    def test_matches_hash_join_output(self, skewed_workload):
        x, y = skewed_workload
        assert (
            schema_skew_join(x, y, q=60).triple_set()
            == hash_join(x, y, q=60).triple_set()
        )
