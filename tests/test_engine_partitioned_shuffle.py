"""Tests for the partitioned shuffle: hash fast paths, mapper-side
pre-partitioning, and cross-process stability of partition assignment.

The new `stable_hash` fast paths are *not* required to reproduce the old
repr-CRC32 values — what matters is that partition assignment is stable
across runs and across worker processes, which is what pins per-task load
metrics in benchmark artifacts.
"""

from __future__ import annotations

import pytest

from repro.apps.skew_join import schema_skew_join
from repro.engine.backends import ProcessBackend, ThreadBackend
from repro.engine.engine import _run_map_task, _run_reduce_task
from repro.exceptions import InvalidInstanceError
from repro.mapreduce.shuffle import (
    hash_partition,
    partition_groups,
    stable_hash,
)
from repro.mapreduce.types import default_size
from repro.workloads.relations import generate_join_workload

KEYS = [
    0,
    1,
    -17,
    10**12,
    True,
    False,
    "",
    "word",
    "unicode-é中",
    b"raw-bytes",
    ("light", 7),
    ("hh", 3, 12),
    ("nested", ("a", 1)),
    (),
    3.25,
    None,
    frozenset({1, 2}),
]


class TestStableHash:
    def test_returns_nonnegative_ints(self):
        for key in KEYS:
            value = stable_hash(key)
            assert isinstance(value, int) and value >= 0, key

    def test_stable_within_process(self):
        assert [stable_hash(k) for k in KEYS] == [stable_hash(k) for k in KEYS]

    def test_stable_across_processes(self):
        local = [stable_hash(k) for k in KEYS]
        remote = ProcessBackend(max_workers=1).run_tasks(stable_hash, KEYS)
        assert remote == local

    def test_tuple_hash_depends_on_elements_and_length(self):
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))
        assert stable_hash((1,)) != stable_hash((1, 1))
        assert stable_hash(()) != stable_hash((0,))

    def test_distinct_strings_spread(self):
        values = {stable_hash(f"key-{i}") for i in range(200)}
        assert len(values) == 200

    def test_equal_keys_hash_equal_across_types(self):
        # The hash/equality contract: 1 == 1.0 == True, so all three must
        # land in the same reduce partition or the partitioned shuffle
        # would reduce "the same" key in two tasks.
        assert stable_hash(1) == stable_hash(1.0) == stable_hash(True)
        assert stable_hash(0) == stable_hash(0.0) == stable_hash(False)
        assert stable_hash(-7) == stable_hash(-7.0)
        assert stable_hash(("a", 1)) == stable_hash(("a", 1.0))

    def test_mixed_numeric_key_types_match_simulator(self):
        """Equal keys emitted with different numeric types must merge into
        one reducer on every backend, exactly as the simulator's dict does."""
        from repro.engine.engine import ExecutionEngine
        from repro.mapreduce.job import MapReduceJob

        records = list(range(8))
        reference = MapReduceJob(map_fn=int_float_map, reduce_fn=sum_reduce).run(
            records
        )
        for backend in ("serial", "threads", "processes"):
            result = ExecutionEngine(
                map_fn=int_float_map,
                reduce_fn=sum_reduce,
                backend=backend,
                map_chunk_size=2,
                num_reduce_tasks=3,
            ).run(records)
            assert result.outputs == reference.outputs, backend
            assert result.metrics == reference.metrics, backend


class TestPartitionGroups:
    def test_single_partition_passthrough(self):
        groups = {"a": [1], "b": [2]}
        assert partition_groups(groups, 1) == [groups]

    def test_every_key_lands_exactly_once(self):
        groups = {f"k{i}": [i] for i in range(50)}
        buckets = partition_groups(groups, 7)
        assert len(buckets) == 7
        seen = [key for bucket in buckets for key in bucket]
        assert sorted(seen) == sorted(groups)
        for bucket in buckets:
            for key, values in bucket.items():
                assert values is groups[key]

    def test_agrees_with_hash_partition(self):
        keys = [f"k{i}" for i in range(50)]
        groups = {key: [1] for key in keys}
        by_groups = partition_groups(groups, 5)
        by_keys = hash_partition(keys, 5)
        assert [sorted(b) for b in by_groups] == [sorted(b) for b in by_keys]

    def test_rejects_nonpositive_partition_count(self):
        with pytest.raises(InvalidInstanceError):
            partition_groups({}, 0)


def word_map(record: str):
    for word in record.split():
        yield word, 1


def int_float_map(record: int):
    """Emit the same logical key alternately as int and float."""
    key = record % 2
    yield (key if record % 4 < 2 else float(key)), 1


def sum_reduce(key, values):
    yield key, sum(values)


class TestMapTaskContract:
    def test_map_task_buckets_pairs_and_accounts(self):
        chunk = ["a b a", "b c"]
        (
            buckets,
            pair_count,
            comm,
            record_count,
            peak,
            spill,
            encoded_bytes,
            encode_seconds,
        ) = _run_map_task(
            chunk,
            map_fn=word_map,
            combiner_fn=None,
            size_of=default_size,
            num_partitions=4,
        )
        assert pair_count == 5
        assert comm == 5
        assert record_count == 2
        assert peak == 0  # only measured in memory-budgeted runs
        assert spill is None
        assert encoded_bytes == 0 and encode_seconds == 0.0
        assert len(buckets) == 4
        merged = {}
        for bucket in buckets:
            merged.update(bucket)
        assert merged == {"a": [1, 1], "b": [1, 1], "c": [1]}
        # Keys land where stable_hash says they do.
        for p, bucket in enumerate(buckets):
            for key in bucket:
                assert stable_hash(key) % 4 == p

    def test_reduce_task_merges_in_task_order(self):
        slabs = [{"a": [1, 2]}, {"a": [3], "b": [4]}]
        results, loads, _decode = _run_reduce_task(
            slabs,
            reduce_fn=lambda key, values: [tuple(values)],
            size_of=default_size,
            capacity=None,
            strict=True,
        )
        assert results == [("a", [(1, 2, 3)]), ("b", [(4,)])]
        assert loads == [("a", 3), ("b", 1)]

    def test_reduce_task_skips_reducing_on_strict_overflow(self):
        results, loads, _decode = _run_reduce_task(
            [{"a": [1, 1, 1]}],
            reduce_fn=lambda key, values: [sum(values)],
            size_of=default_size,
            capacity=2,
            strict=True,
        )
        assert results is None
        assert loads == [("a", 3)]


class TestCrossRunStability:
    """Partition assignment (and with it per-task load metrics) must be
    identical between independent runs and across worker processes."""

    @pytest.fixture(scope="class")
    def workload(self):
        return generate_join_workload(300, 300, 8, 1.3, seed=9)

    def test_processes_backend_twice_same_task_loads(self, workload):
        x, y = workload
        first = schema_skew_join(x, y, 80, backend="processes")
        second = schema_skew_join(x, y, 80, backend="processes")
        assert first.engine.task_loads == second.engine.task_loads
        assert first.engine.num_reduce_tasks == second.engine.num_reduce_tasks
        assert first.triples == second.triples
        assert first.metrics == second.metrics

    def test_threads_and_processes_agree_on_task_loads(self, workload):
        x, y = workload
        threaded = schema_skew_join(x, y, 80, backend="threads")
        processed = schema_skew_join(x, y, 80, backend="processes")
        assert threaded.engine.task_loads == processed.engine.task_loads
        assert threaded.triples == processed.triples


class TestBackendPoolReuse:
    def test_thread_pool_shared_inside_context(self):
        backend = ThreadBackend(max_workers=2)
        assert backend._pool is None
        with backend:
            pool = backend._pool
            assert pool is not None
            backend.run_tasks(str, [1, 2, 3])
            backend.run_tasks(str, [4])
            assert backend._pool is pool
        assert backend._pool is None

    def test_backend_usable_again_after_context(self):
        backend = ThreadBackend(max_workers=2)
        with backend:
            assert backend.run_tasks(str, [1]) == ["1"]
        with backend:
            assert backend.run_tasks(str, [2]) == ["2"]

    def test_process_pool_shared_inside_context(self):
        with ProcessBackend(max_workers=1) as backend:
            pool = backend._pool
            assert pool is not None
            assert backend.run_tasks(str, [1, 2]) == ["1", "2"]
            assert backend._pool is pool
