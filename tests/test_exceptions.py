"""Tests for the exception hierarchy's contract."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CapacityExceededError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidSchemaError,
    ReproError,
    SolverLimitError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            InvalidInstanceError,
            InfeasibleInstanceError,
            InvalidSchemaError,
            CapacityExceededError,
            SolverLimitError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_invalid_instance_is_value_error(self):
        # So stdlib-style callers catching ValueError still work.
        assert issubclass(InvalidInstanceError, ValueError)

    def test_one_except_catches_everything(self):
        for exc_type in (InvalidInstanceError, SolverLimitError):
            with pytest.raises(ReproError):
                raise exc_type("boom")


class TestPayloads:
    def test_infeasible_carries_offending_pair(self):
        error = InfeasibleInstanceError("no", offending_pair=(1, 2))
        assert error.offending_pair == (1, 2)

    def test_infeasible_pair_defaults_none(self):
        assert InfeasibleInstanceError("no").offending_pair is None

    def test_invalid_schema_carries_report(self):
        error = InvalidSchemaError("bad", report="the-report")
        assert error.report == "the-report"

    def test_capacity_error_fields(self):
        error = CapacityExceededError("over", key="k", load=12, capacity=10)
        assert (error.key, error.load, error.capacity) == ("k", 12, 10)

    def test_messages_preserved(self):
        assert str(InvalidInstanceError("reason here")) == "reason here"
