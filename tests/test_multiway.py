"""Unit and property tests for the multiway (r-wise) generalization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiway import (
    MultiwayInstance,
    MultiwaySchema,
    multiway_bin_combining,
    multiway_cover_bound,
    multiway_reducer_lower_bound,
    multiway_volume_bound,
)
from repro.exceptions import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    InvalidSchemaError,
)


class TestMultiwayInstance:
    def test_counts(self):
        instance = MultiwayInstance([1, 1, 1, 1, 1], 6, 3)
        assert instance.m == 5
        assert instance.num_groups == 10

    def test_rejects_r_below_two(self):
        with pytest.raises(InvalidInstanceError):
            MultiwayInstance([1, 1], 4, 1)

    def test_feasibility_r_largest(self):
        assert MultiwayInstance([3, 3, 3], 9, 3).is_feasible()
        assert not MultiwayInstance([4, 3, 3], 9, 3).is_feasible()

    def test_fewer_inputs_than_r_is_feasible(self):
        assert MultiwayInstance([5, 5], 10, 3).is_feasible()

    def test_check_feasible_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            MultiwayInstance([4, 4, 4], 10, 3).check_feasible()

    def test_r2_matches_pairwise_problem(self):
        instance = MultiwayInstance([2, 3, 4], 10, 2)
        assert instance.num_groups == 3
        assert list(instance.groups()) == [(0, 1), (0, 2), (1, 2)]


class TestMultiwaySchema:
    def test_single_reducer_covers_all(self):
        instance = MultiwayInstance([1, 1, 1], 3, 3)
        schema = MultiwaySchema.from_lists(instance, [[0, 1, 2]])
        ok, message = schema.verify()
        assert ok, message

    def test_capacity_violation(self):
        instance = MultiwayInstance([2, 2, 2], 4, 2)
        schema = MultiwaySchema.from_lists(instance, [[0, 1, 2]])
        ok, message = schema.verify()
        assert not ok and "load" in message

    def test_missing_group_detected(self):
        instance = MultiwayInstance([1, 1, 1, 1], 3, 3)
        schema = MultiwaySchema.from_lists(instance, [[0, 1, 2]])
        ok, message = schema.verify()
        assert not ok and "meets at no reducer" in message

    def test_require_valid_raises(self):
        instance = MultiwayInstance([1, 1, 1, 1], 3, 3)
        schema = MultiwaySchema.from_lists(instance, [])
        with pytest.raises(InvalidSchemaError):
            schema.require_valid()

    def test_costs(self):
        instance = MultiwayInstance([1, 2, 3], 6, 2)
        schema = MultiwaySchema.from_lists(instance, [[0, 1], [0, 2], [1, 2]])
        assert schema.loads == (3, 4, 5)
        assert schema.communication_cost == 12


class TestMultiwayBounds:
    def test_volume(self):
        assert multiway_volume_bound(MultiwayInstance([3, 3, 3], 3, 2)) == 3

    def test_cover_bound_unit_sizes(self):
        # m=6, r=3, q=3 units -> t=3 per reducer -> C(6,3)/C(3,3) = 20.
        instance = MultiwayInstance([1] * 6, 3, 3)
        assert multiway_cover_bound(instance) == 20

    def test_lower_bound_dominates(self):
        instance = MultiwayInstance([1, 2, 1, 2, 1], 6, 3)
        assert multiway_reducer_lower_bound(instance) >= multiway_volume_bound(instance)


class TestBinCombining:
    def test_valid_schema(self):
        instance = MultiwayInstance([2, 3, 1, 2, 4, 2, 3, 1], 12, 3)
        schema = multiway_bin_combining(instance)
        schema.require_valid()

    def test_single_reducer_when_everything_fits(self):
        instance = MultiwayInstance([1, 1, 1], 9, 3)
        schema = multiway_bin_combining(instance)
        assert schema.num_reducers == 1

    def test_m_below_r(self):
        instance = MultiwayInstance([2, 2], 9, 3)
        schema = multiway_bin_combining(instance)
        assert schema.num_reducers == 1
        assert schema.require_valid()

    def test_rejects_oversized_share(self):
        instance = MultiwayInstance([5, 1, 1, 1], 12, 3)  # share = 4 < 5
        with pytest.raises(InvalidInstanceError, match="q//r"):
            multiway_bin_combining(instance)

    def test_reducer_count_is_bin_combinations(self):
        # Unit sizes, q=3, r=3: bins of capacity 1 -> 6 bins -> C(6,3)=20.
        instance = MultiwayInstance([1] * 6, 3, 3)
        schema = multiway_bin_combining(instance)
        assert schema.num_reducers == 20

    def test_respects_lower_bound(self):
        instance = MultiwayInstance([1, 2, 1, 1, 2, 1], 9, 3)
        schema = multiway_bin_combining(instance)
        assert schema.num_reducers >= multiway_reducer_lower_bound(instance)

    def test_r4(self):
        instance = MultiwayInstance([1, 2, 1, 2, 1, 2, 1], 16, 4)
        schema = multiway_bin_combining(instance)
        schema.require_valid()


@settings(deadline=None, max_examples=40)
@given(
    st.integers(2, 4).flatmap(
        lambda r: st.integers(2 * r, 24).flatmap(
            lambda q: st.tuples(
                st.lists(st.integers(1, q // r), min_size=1, max_size=9),
                st.just(q),
                st.just(r),
            )
        )
    )
)
def test_bin_combining_always_valid(case):
    sizes, q, r = case
    instance = MultiwayInstance(sizes, q, r)
    schema = multiway_bin_combining(instance)
    ok, message = schema.verify()
    assert ok, message
    assert schema.num_reducers >= multiway_reducer_lower_bound(instance) or (
        instance.m < r
    )
