"""Integration tests: distributed outer product on the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.tensor_product import distributed_outer_product
from repro.workloads.vectors import dense_outer_product, generate_block_vector


class TestDistributedOuterProduct:
    @pytest.mark.parametrize("profile", ["uniform", "zipf"])
    def test_matches_dense_computation(self, profile):
        u = generate_block_vector("u", 5, 30, profile=profile, seed=31)
        v = generate_block_vector("v", 4, 30, profile=profile, seed=32)
        run = distributed_outer_product(u, v, q=30)
        assert np.allclose(run.dense(), dense_outer_product(u, v))

    def test_every_entry_exactly_once(self):
        u = generate_block_vector("u", 4, 24, seed=33)
        v = generate_block_vector("v", 4, 24, seed=34)
        run = distributed_outer_product(u, v, q=24)
        coordinates = [(r, c) for r, c, _ in run.entries]
        assert len(coordinates) == len(set(coordinates))
        assert len(coordinates) == u.dimension * v.dimension

    def test_capacity_respected(self):
        u = generate_block_vector("u", 6, 20, seed=35)
        v = generate_block_vector("v", 6, 20, seed=36)
        run = distributed_outer_product(u, v, q=20)
        assert run.metrics.max_reducer_load <= 20
        assert run.metrics.capacity_violations == ()

    def test_schema_valid(self):
        u = generate_block_vector("u", 3, 20, seed=37)
        v = generate_block_vector("v", 3, 20, seed=38)
        run = distributed_outer_product(u, v, q=20)
        assert run.schema.verify().valid

    def test_named_method(self):
        u = generate_block_vector("u", 3, 20, seed=39)
        v = generate_block_vector("v", 3, 20, seed=40)
        run = distributed_outer_product(u, v, q=20, method="greedy")
        assert np.allclose(run.dense(), dense_outer_product(u, v))

    def test_single_blocks(self):
        u = generate_block_vector("u", 1, 10, seed=41)
        v = generate_block_vector("v", 1, 10, seed=42)
        run = distributed_outer_product(u, v, q=10)
        assert run.metrics.num_reducers == 1
        assert np.allclose(run.dense(), dense_outer_product(u, v))
