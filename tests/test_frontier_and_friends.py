"""Tests for the capacity frontier and the common-friends application."""

from __future__ import annotations

import pytest

from repro.analysis.frontier import best_capacity, capacity_frontier
from repro.apps.common_friends import run_common_friends
from repro.exceptions import InvalidInstanceError
from repro.workloads.social import (
    User,
    all_common_friends,
    common_friends,
    generate_users,
)


class TestSocialWorkload:
    def test_generation_shape(self):
        users = generate_users(12, 40, seed=0)
        assert len(users) == 12
        assert all(u.size == len(u.friends) for u in users)
        assert all(u.size >= 1 for u in users)

    def test_population_bound(self):
        users = generate_users(5, 400, population=10, seed=1)
        assert all(u.size <= 10 for u in users)
        assert all(f < 10 for u in users for f in u.friends)

    def test_reproducible(self):
        a = generate_users(6, 40, seed=3)
        b = generate_users(6, 40, seed=3)
        assert [u.friends for u in a] == [u.friends for u in b]

    def test_common_friends_function(self):
        a = User(0, frozenset({1, 2, 3}))
        b = User(1, frozenset({2, 3, 4}))
        assert common_friends(a, b) == frozenset({2, 3})

    def test_bad_args(self):
        with pytest.raises(InvalidInstanceError):
            generate_users(0, 40)
        with pytest.raises(InvalidInstanceError):
            generate_users(3, 40, population=0)


class TestCommonFriendsApp:
    def test_matches_ground_truth(self):
        users = generate_users(20, 50, seed=4)
        run = run_common_friends(users, 50)
        assert run.as_dict() == all_common_friends(users)

    def test_every_pair_exactly_once(self):
        users = generate_users(15, 40, seed=5)
        run = run_common_friends(users, 40)
        assert len(run.pairs) == 15 * 14 // 2

    def test_capacity_respected(self):
        users = generate_users(25, 60, seed=6)
        run = run_common_friends(users, 60)
        assert run.metrics.max_reducer_load <= 60
        assert run.metrics.capacity_violations == ()

    def test_schema_valid(self):
        users = generate_users(10, 40, seed=7)
        assert run_common_friends(users, 40).schema.verify().valid

    def test_named_method(self):
        users = generate_users(10, 40, seed=8)
        run = run_common_friends(users, 40, method="greedy")
        assert run.as_dict() == all_common_friends(users)


class TestCapacityFrontier:
    @pytest.fixture
    def sizes(self):
        return [3, 5, 2, 7, 4, 6] * 5

    def test_one_point_per_q(self, sizes):
        points = capacity_frontier(sizes, [40, 80, 160], 4)
        assert [p.q for p in points] == [40, 80, 160]

    def test_at_least_one_pareto_point(self, sizes):
        points = capacity_frontier(sizes, [40, 80, 160, 320], 4)
        assert any(p.pareto_optimal for p in points)

    def test_dominated_points_marked(self, sizes):
        points = capacity_frontier(sizes, [40, 80, 160, 320], 4)
        by_q = {p.q: p for p in points}
        # q=40 has strictly more comm than q=80; check dominance is applied
        # whenever makespan is also no better.
        p40, p80 = by_q[40], by_q[80]
        if p80.communication_cost <= p40.communication_cost and p80.makespan <= p40.makespan:
            assert not p40.pareto_optimal

    def test_pareto_points_are_mutually_nondominated(self, sizes):
        points = [p for p in capacity_frontier(sizes, [40, 80, 160, 320], 8) if p.pareto_optimal]
        for a in points:
            for b in points:
                if a is b:
                    continue
                dominates = (
                    a.communication_cost <= b.communication_cost
                    and a.makespan <= b.makespan
                    and (
                        a.communication_cost < b.communication_cost
                        or a.makespan < b.makespan
                    )
                )
                assert not dominates

    def test_best_capacity_is_swept_value(self, sizes):
        best = best_capacity(sizes, [40, 80, 160], 4)
        assert best.q in (40, 80, 160)

    def test_best_capacity_weights_change_choice(self, sizes):
        comm_heavy = best_capacity(sizes, [40, 80, 160, 320], 4, comm_weight=100.0)
        time_heavy = best_capacity(
            sizes, [40, 80, 160, 320], 4, makespan_weight=100.0
        )
        # Weighting communication strongly favors larger q (less replication);
        # weighting makespan strongly favors the parallel regime.
        assert comm_heavy.communication_cost <= time_heavy.communication_cost

    def test_as_row(self, sizes):
        row = capacity_frontier(sizes, [80], 4)[0].as_row()
        assert row["q"] == 80
        assert "pareto" in row
