"""Out-of-core execution: spill-to-disk shuffle, budgets, and key contracts.

The acceptance bar for the spill path is *bit-identity*: the same app
workload run with an artificially tiny ``memory_budget`` (forcing several
spill runs per partition) and with unbounded memory must produce identical
outputs and identical strict-mode exceptions on every backend.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.apps.skew_join import schema_skew_join
from repro.core.instance import A2AInstance
from repro.core.selector import solve_a2a
from repro.engine.backends import BACKENDS
from repro.engine.config import ExecutionConfig, resolve_execution
from repro.engine.crossval import validate_against_simulator
from repro.engine.engine import ExecutionEngine
from repro.engine.quickbench import (
    check_spill,
    fanout_map,
    run_out_of_core,
    sum_reduce,
)
from repro.engine.spill import MapSpill, merge_sources, write_run
from repro.exceptions import (
    CapacityExceededError,
    InvalidInstanceError,
    SpillError,
)
from repro.mapreduce.job import MapReduceJob
from repro.workloads.relations import generate_join_workload

ALL_BACKENDS = sorted(BACKENDS)


def index_reduce(key, values):
    """Module-level (picklable) reducer: the sorted input indices."""
    yield key, tuple(sorted(i for i, _ in values))


def mod3_map(record):
    """Module-level (picklable) mapper that overloads three keys."""
    yield record % 3, 1


def fanout_engine(backend: str, memory_budget: int | None, **kwargs):
    return ExecutionEngine(
        map_fn=fanout_map,
        reduce_fn=sum_reduce,
        backend=backend,
        memory_budget=memory_budget,
        **kwargs,
    )


class TestSpillPrimitives:
    def test_write_and_read_run_roundtrip_sorted(self, tmp_path):
        groups = {"b": [2, 3], "a": [1], "c": [4]}
        path, nbytes = write_run(groups, str(tmp_path))
        assert nbytes == os.path.getsize(path) > 0
        items = list(merge_sources([path]))
        assert items == [("a", [1]), ("b", [2, 3]), ("c", [4])]

    def test_merge_concatenates_in_source_order(self, tmp_path):
        first, _ = write_run({"k": [1, 2], "a": [0]}, str(tmp_path))
        second, _ = write_run({"k": [3], "z": [9]}, str(tmp_path))
        leftover = {"k": [4]}
        merged = dict(merge_sources([first, second, leftover]))
        assert merged["k"] == [1, 2, 3, 4]
        assert list(merged) == ["a", "k", "z"]

    def test_merge_handles_cross_type_equal_keys(self, tmp_path):
        # 1 == 1.0: the merge must group them exactly like a dict would.
        first, _ = write_run({1: ["int"]}, str(tmp_path))
        merged = dict(merge_sources([first, {1.0: ["float"]}]))
        assert merged == {1: ["int", "float"]}

    def test_unorderable_keys_raise_spill_error(self, tmp_path):
        with pytest.raises(SpillError, match="orderable"):
            write_run({"a": [1], (1, 2): [2]}, str(tmp_path))
        with pytest.raises(SpillError, match="orderable"):
            list(merge_sources([{"a": [1]}, {(1, 2): [2]}]))

    def test_corrupt_run_raises_spill_error(self, tmp_path):
        path = tmp_path / "bad.run"
        path.write_bytes(b"\x80\x05 this is not a pickle stream")
        with pytest.raises(SpillError, match="corrupt"):
            list(merge_sources([str(path)]))

    def test_missing_run_raises_spill_error(self, tmp_path):
        with pytest.raises(SpillError, match="cannot open"):
            list(merge_sources([str(tmp_path / "gone.run")]))

    def test_run_truncated_at_item_boundary_raises(self, tmp_path):
        # A run whose count header promises more items than the file
        # holds must fail loudly, not be read as a shorter run.
        import pickle

        path = tmp_path / "short.run"
        with open(path, "wb") as handle:
            pickle.dump(2, handle)
            pickle.dump(("a", [1]), handle)  # second item missing
        with pytest.raises(SpillError, match="truncated"):
            list(merge_sources([str(path)]))

    def test_map_spill_partition_runs_preserve_flush_order(self):
        spill = MapSpill(
            flushes=[("f0p0", None), ("f1p0", "f1p1"), (None, "f2p1")]
        )
        assert spill.partition_runs(0) == ["f0p0", "f1p0"]
        assert spill.partition_runs(1) == ["f1p1", "f2p1"]


class TestSpilledEqualsInMemory:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fanout_outputs_identical_and_spilled(self, backend):
        records = list(range(1500))
        unbounded = fanout_engine(backend, None).run(records)
        budgeted = fanout_engine(
            backend, 64, num_reduce_tasks=2, map_chunk_size=400
        ).run(records)
        assert budgeted.outputs == unbounded.outputs
        assert unbounded.metrics.spill_runs == 0
        assert unbounded.metrics.spilled_bytes == 0
        # >= 2 spill runs per partition, per the acceptance criteria.
        assert budgeted.metrics.spill_runs >= 2 * 2
        assert budgeted.metrics.spilled_bytes > 0
        assert 0 < budgeted.metrics.peak_buffered_pairs <= 64 + 24
        # Analytical metrics are identical either way.
        assert budgeted.metrics.reducer_loads == unbounded.metrics.reducer_loads
        assert (
            budgeted.metrics.communication_cost
            == unbounded.metrics.communication_cost
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_crossval_app_workload_tiny_budget(self, backend):
        """The acceptance test: same app workload, tiny budget vs unbounded,
        diffed against the reference simulator on every backend."""
        instance = A2AInstance([3, 5, 2, 6, 4, 5, 3, 4], q=12)
        schema = solve_a2a(instance)
        records = [f"payload-{i}" for i in range(instance.m)]
        results = {}
        for budget in (None, 2):
            engine_result, job_result, report = validate_against_simulator(
                schema,
                records,
                index_reduce,
                backend=backend,
                memory_budget=budget,
            )
            assert report.ok, report.summary()
            results[budget] = engine_result
        assert results[2].outputs == results[None].outputs
        assert results[2].metrics.spill_runs >= 2
        assert results[None].metrics.spill_runs == 0

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_strict_mode_exception_identical(self, backend):
        """An overloaded key must raise the same CapacityExceededError
        (same key, load, capacity) with and without spilling."""

        errors = {}
        for budget in (None, 8):
            engine = ExecutionEngine(
                map_fn=mod3_map,
                reduce_fn=sum_reduce,
                reducer_capacity=5,
                strict_capacity=True,
                backend=backend,
                memory_budget=budget,
            )
            with pytest.raises(CapacityExceededError) as excinfo:
                engine.run(list(range(60)))
            errors[budget] = excinfo.value
        assert errors[8].key == errors[None].key
        assert errors[8].load == errors[None].load
        assert errors[8].capacity == errors[None].capacity
        assert str(errors[8]) == str(errors[None])

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_skew_join_app_spilled_equals_in_memory(self, backend):
        x, y = generate_join_workload(300, 300, 8, 1.3, seed=11)
        baseline = schema_skew_join(x, y, 80, backend=backend)
        budgeted = schema_skew_join(
            x, y, 80, config=ExecutionConfig(backend=backend, memory_budget=32)
        )
        assert budgeted.triples == baseline.triples
        assert budgeted.metrics.spill_runs >= 2
        assert baseline.metrics.spill_runs == 0

    def test_spill_dir_cleaned_up(self, tmp_path):
        spill_base = tmp_path / "spills"
        result = fanout_engine(
            "serial", 32, spill_dir=str(spill_base)
        ).run(list(range(500)))
        assert result.metrics.spill_runs > 0
        # The base dir survives but the per-run subdirectory is removed.
        assert spill_base.exists()
        assert list(spill_base.iterdir()) == []

    def test_spill_dir_cleaned_up_on_strict_failure(self, tmp_path):
        spill_base = tmp_path / "spills"
        engine = ExecutionEngine(
            map_fn=lambda r: [(0, 1)],
            reduce_fn=sum_reduce,
            reducer_capacity=3,
            strict_capacity=True,
            memory_budget=8,
            spill_dir=str(spill_base),
        )
        with pytest.raises(CapacityExceededError):
            engine.run(list(range(50)))
        assert list(spill_base.iterdir()) == []


class TestKeyContract:
    def test_engine_rejects_nan_keys_in_strict_mode(self):
        engine = ExecutionEngine(
            map_fn=lambda r: [(float("nan"), r)],
            reduce_fn=sum_reduce,
            strict_capacity=True,
        )
        with pytest.raises(InvalidInstanceError, match="non-self-equal"):
            engine.run([1, 2, 3])

    def test_engine_rejects_nan_keys_when_budgeted_even_nonstrict(self):
        engine = ExecutionEngine(
            map_fn=lambda r: [(float("nan"), r)],
            reduce_fn=sum_reduce,
            strict_capacity=False,
            memory_budget=1,
        )
        with pytest.raises(InvalidInstanceError, match="non-self-equal"):
            engine.run([1, 2, 3])

    def test_engine_nonstrict_unbudgeted_keeps_dict_semantics(self):
        # Pin the historical behavior: without strict mode or a budget,
        # NaN keys fall through to raw dict grouping (one group per NaN
        # object within a chunk).
        nan = float("nan")
        engine = ExecutionEngine(
            map_fn=lambda r: [(nan, r)],
            reduce_fn=lambda k, v: [len(v)],
            strict_capacity=False,
        )
        result = engine.run([1, 2, 3])
        assert result.outputs == [3]  # same NaN object -> one dict group

    def test_simulator_pins_nan_grouping_behavior(self):
        # The reference simulator keeps raw dict semantics: distinct NaN
        # objects group separately even though they all print as nan.
        job = MapReduceJob(
            map_fn=lambda r: [(float("nan"), r)],
            reduce_fn=lambda k, v: [len(v)],
        )
        result = job.run([1, 2, 3])
        assert result.outputs == [1, 1, 1]
        assert result.metrics.num_reducers == 3
        assert all(math.isnan(k) for k in result.metrics.reducer_loads)


class TestConfigAndBench:
    def test_execution_config_validates(self):
        with pytest.raises(InvalidInstanceError, match="memory_budget"):
            ExecutionConfig(memory_budget=0)
        with pytest.raises(InvalidInstanceError, match="num_workers"):
            ExecutionConfig(num_workers=-1)

    def test_resolve_execution_precedence(self):
        config = ExecutionConfig(backend="threads", memory_budget=9)
        assert resolve_execution(config, "serial", 4) is config
        assert resolve_execution(None, None, None) is None
        legacy = resolve_execution(None, "processes", 2)
        assert legacy.backend == "processes"
        assert legacy.num_workers == 2
        assert legacy.memory_budget is None

    def test_engine_rejects_nonpositive_budget(self):
        engine = fanout_engine("serial", None)
        engine.memory_budget = 0
        with pytest.raises(InvalidInstanceError, match="memory_budget"):
            engine.run([1])

    def test_run_out_of_core_rows_and_check(self):
        rows = run_out_of_core(
            backends=["serial", "threads"],
            scale=0.2,
            memory_budget=128,
        )
        assert len(rows) == 4  # two backends x two modes
        assert check_spill(rows) == []
        budgeted = [r for r in rows if r["mode"] == "budgeted"]
        assert all(int(r["spill_runs"]) >= 1 for r in budgeted)
        unbounded = [r for r in rows if r["mode"] == "unbounded"]
        assert all(int(r["spill_runs"]) == 0 for r in unbounded)

    def test_check_spill_flags_missing_spill(self):
        rows = [
            {
                "scenario": "s",
                "backend": "serial",
                "mode": "budgeted",
                "memory_budget": 10,
                "spill_runs": 0,
                "peak_buffered": 5,
            }
        ]
        assert any("spilled no runs" in f for f in check_spill(rows))
        assert any("compared nothing" in f for f in check_spill([]))

    def test_check_spill_peak_bound_accounts_for_fanout(self):
        # A budget smaller than one record's fan-out must not flag the
        # documented budget+fanout overshoot as a failure...
        rows = run_out_of_core(
            backends=["serial"], scale=0.05, memory_budget=8
        )
        assert check_spill(rows) == []
        # ...but a peak beyond budget + fan-out is a real failure.
        bad = [dict(r) for r in rows if r["mode"] == "budgeted"]
        bad[0]["peak_buffered"] = int(bad[0]["peak_bound"]) + 1
        assert any("exceeds bound" in f for f in check_spill(bad))
