"""Planner pipeline tests: JobSpec -> Plan -> run.

Covers spec validation, the three planning modes (fast path, pinned,
full cost-based), objective-driven choice, the exact-solver size gate,
execution-config resolution rules, Plan JSON round-tripping, and the
run stage funneling into the engine.
"""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import A2A_METHODS, X2Y_METHODS
from repro.engine.config import ExecutionConfig
from repro.exceptions import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    UnknownMethodError,
)
from repro.planner import (
    Environment,
    JobSpec,
    Plan,
    plan,
    plan_schema,
    resolve_execution_config,
    run,
)
from repro.planner.planner import (
    EXACT_A2A_INPUT_LIMIT,
    EXACT_X2Y_PAIR_LIMIT,
    MULTIWAY_METHODS,
)

ENV = Environment(num_workers=2, memory_bytes=1 << 30)
SERIAL_ENV = Environment(num_workers=1, memory_bytes=1 << 30)


class TestJobSpec:
    def test_a2a_constructor_coerces_sized_objects(self):
        class Sized:
            def __init__(self, size):
                self.size = size

        spec = JobSpec.a2a([Sized(3), 5, Sized(2)], q=10)
        assert spec.sizes == (3, 5, 2)
        assert spec.kind == "a2a"

    def test_numpy_integer_sizes_keep_their_values(self):
        # numpy scalars are not Python ints and their .size attribute is
        # the element count (always 1); coercion must go through
        # __index__ so the actual values survive.
        numpy = pytest.importorskip("numpy")
        spec = JobSpec.a2a(numpy.array([3, 5, 7]), q=12)
        assert spec.sizes == (3, 5, 7)

    def test_x2y_requires_both_sides(self):
        with pytest.raises(InvalidInstanceError):
            JobSpec(kind="x2y", q=10, x_sizes=(3,))

    def test_a2a_rejects_side_sizes(self):
        with pytest.raises(InvalidInstanceError):
            JobSpec(kind="a2a", q=10, sizes=(3,), x_sizes=(1,))

    def test_multiway_requires_arity(self):
        with pytest.raises(InvalidInstanceError):
            JobSpec(kind="multiway", q=10, sizes=(2, 2))
        spec = JobSpec.multiway([2, 2, 2], q=9, r=3)
        assert spec.r == 3

    def test_unknown_kind_and_objective(self):
        with pytest.raises(InvalidInstanceError):
            JobSpec(kind="nope", q=10, sizes=(3,))
        with pytest.raises(InvalidInstanceError):
            JobSpec.a2a([3], q=10, objective="max-profit")

    def test_spec_dict_round_trip(self):
        for spec in [
            JobSpec.a2a([3, 5], q=10, objective="min-communication", method=None),
            JobSpec.x2y([4], [3], q=10, method="greedy"),
            JobSpec.multiway([2, 2, 2], q=9, r=3),
        ]:
            assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_instance_kinds(self):
        assert isinstance(JobSpec.a2a([3], q=5).instance(), A2AInstance)
        assert isinstance(JobSpec.x2y([3], [2], q=6).instance(), X2YInstance)


class TestPlanModes:
    def test_full_planning_picks_objective_argmin(self):
        spec = JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None)
        planned = plan(spec, ENV)
        scored = [c for c in planned.candidates if c.status == "scored"]
        best = min(scored, key=lambda c: c.objective_value)
        assert planned.chosen_score.objective_value == best.objective_value
        assert planned.mode == "planned"
        assert planned.schema().num_reducers == planned.chosen_score.num_reducers

    @pytest.mark.parametrize(
        "objective,metric",
        [
            ("min-reducers", "num_reducers"),
            ("min-communication", "communication_cost"),
            ("min-makespan", "makespan"),
        ],
    )
    def test_objective_value_tracks_metric(self, objective, metric):
        spec = JobSpec.x2y([9, 2, 3], [5, 3], q=17, method=None, objective=objective)
        planned = plan(spec, ENV)
        for candidate in planned.candidates:
            if candidate.status == "scored":
                assert candidate.objective_value == pytest.approx(
                    float(getattr(candidate, metric))
                )

    def test_chosen_within_ten_percent_of_best_candidate(self):
        # The acceptance bar: the planner's pick is within 10% of the best
        # candidate it enumerated (it is the argmin, so the gap is zero).
        for spec in [
            JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None),
            JobSpec.a2a([4] * 8, q=12, method=None, objective="min-communication"),
            JobSpec.x2y([9, 2, 3], [5, 3], q=17, method=None, objective="min-makespan"),
        ]:
            planned = plan(spec, ENV)
            best = min(
                c.objective_value
                for c in planned.candidates
                if c.status == "scored"
            )
            assert planned.chosen_score.objective_value <= best * 1.10

    def test_pinned_method(self):
        spec = JobSpec.a2a([3, 5, 2], q=12, method="greedy")
        planned = plan(spec, ENV)
        assert planned.mode == "pinned"
        assert planned.chosen == "greedy"
        assert [c.method for c in planned.candidates] == ["greedy"]

    def test_pinned_unknown_method_lists_choices(self):
        with pytest.raises(UnknownMethodError) as error:
            plan(JobSpec.a2a([3, 5], q=12, method="magic"), ENV)
        message = str(error.value)
        assert "unknown A2A method 'magic'" in message
        assert "bin_pairing" in message and "exact" in message

    def test_fast_path_mode_records_rule(self):
        planned = plan(JobSpec.a2a([4] * 6, q=8), ENV)
        assert planned.mode == "fast-path"
        assert planned.rationale.startswith("fast path:")
        assert {c.method for c in planned.candidates} == {
            "equal_grouping",
            "grouped_covering",
        }

    def test_infeasible_spec_raises(self):
        with pytest.raises(InfeasibleInstanceError):
            plan(JobSpec.a2a([7, 8], q=10, method=None), ENV)

    def test_failed_candidates_are_recorded_not_fatal(self):
        planned = plan(JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None), ENV)
        failed = {c.method for c in planned.candidates if c.status == "failed"}
        # equal-sized methods cannot run on mixed sizes but must not kill
        # the plan.
        assert "equal_grouping" in failed
        for candidate in planned.candidates:
            if candidate.status == "failed":
                assert candidate.reason

    def test_multiway_planning(self):
        spec = JobSpec.multiway([2, 2, 2, 2, 2], q=9, r=3, method=None)
        planned = plan(spec, ENV)
        assert planned.chosen == "bin_combining"
        assert planned.schema().verify() == (True, "valid")
        assert "num_reducers" in planned.lower_bounds


class TestExactGate:
    def test_a2a_exact_skipped_above_limit(self):
        sizes = [1] * (EXACT_A2A_INPUT_LIMIT + 1)
        planned = plan(JobSpec.a2a(sizes, q=4, method=None), ENV)
        exact = planned.candidate("exact")
        assert exact.status == "skipped"
        assert "exceeds the exact-search limit" in exact.reason

    def test_a2a_exact_attempted_at_limit(self):
        # At the limit the gate lets exact run; it may still blow its node
        # budget, which must be recorded as a failure, never as fatal.
        sizes = [1] * EXACT_A2A_INPUT_LIMIT
        planned = plan(JobSpec.a2a(sizes, q=4, method=None), ENV)
        assert planned.candidate("exact").status != "skipped"

    def test_a2a_exact_scored_on_small_instance(self):
        planned = plan(JobSpec.a2a([1] * 6, q=4, method=None), ENV)
        assert planned.candidate("exact").status == "scored"

    def test_x2y_exact_skipped_above_pair_limit(self):
        x = [1] * 6
        y = [1] * 6  # 36 cross pairs > 30
        planned = plan(JobSpec.x2y(x, y, q=4, method=None), ENV)
        assert planned.candidate("exact").status == "skipped"
        assert EXACT_X2Y_PAIR_LIMIT > 0

    def test_registries_cover_all_kinds(self):
        from repro.planner import method_registry

        assert method_registry("a2a") is A2A_METHODS
        assert method_registry("x2y") is X2Y_METHODS
        assert method_registry("multiway") is MULTIWAY_METHODS


class TestExecutionResolution:
    def test_serial_on_single_worker_machine(self):
        config = resolve_execution_config(
            SERIAL_ENV, num_reducers=50, communication_cost=100
        )
        assert config.backend == "serial"
        assert config.num_workers is None
        assert config.num_reduce_tasks is None

    def test_serial_for_single_reducer_schema(self):
        config = resolve_execution_config(
            ENV, num_reducers=1, communication_cost=100
        )
        assert config.backend == "serial"

    def test_threads_with_capped_workers_and_partitions(self):
        config = resolve_execution_config(
            ENV, num_reducers=3, communication_cost=100
        )
        assert config.backend == "threads"
        assert config.num_workers == 2  # min(env workers, reducers)
        assert config.num_reduce_tasks == 3  # min(reducers, 4 * workers)

    def test_memory_budget_only_when_shuffle_exceeds_share(self):
        small = resolve_execution_config(
            ENV, num_reducers=4, communication_cost=10
        )
        assert small.memory_budget is None
        tight_env = Environment(num_workers=2, memory_bytes=1 << 20)
        big = resolve_execution_config(
            tight_env, num_reducers=4, communication_cost=1 << 20
        )
        assert big.memory_budget is not None
        assert big.memory_budget >= 1024

    def test_no_budget_when_memory_unknown(self):
        env = Environment(num_workers=2, memory_bytes=None)
        config = resolve_execution_config(
            env, num_reducers=4, communication_cost=1 << 40
        )
        assert config.memory_budget is None

    def test_environment_detect_probes_sane_values(self):
        env = Environment.detect()
        assert env.num_workers >= 1
        assert env.memory_bytes is None or env.memory_bytes > 0


class TestPlanSerialization:
    @pytest.mark.parametrize(
        "spec",
        [
            JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None),
            JobSpec.a2a([4] * 6, q=8),
            JobSpec.x2y([4, 5], [3, 3], q=10, method=None, objective="min-makespan"),
            JobSpec.x2y([4], [3], q=10, method="greedy"),
            JobSpec.multiway([2, 2, 2, 2], q=9, r=3, method=None),
        ],
    )
    def test_json_round_trip_is_lossless(self, spec):
        planned = plan(spec, ENV)
        loaded = Plan.from_json(planned.to_json())
        assert loaded == planned
        # And the rebuilt schema is the same schema.
        assert loaded.schema().reducers == planned.schema().reducers

    def test_bad_json_and_bad_payloads(self):
        with pytest.raises(InvalidInstanceError):
            Plan.from_json("{not json")
        with pytest.raises(InvalidInstanceError):
            Plan.from_json('{"version": 99}')
        with pytest.raises(InvalidInstanceError):
            Plan.from_json('{"version": 1, "spec": {"kind": "a2a", "q": 5}}')

    def test_live_backend_does_not_serialize(self):
        from repro.engine.backends import SerialBackend

        planned = plan(JobSpec.a2a([3, 5], q=10), ENV)
        hacked = Plan(
            spec=planned.spec,
            chosen=planned.chosen,
            rationale=planned.rationale,
            execution=ExecutionConfig(backend=SerialBackend()),
            candidates=planned.candidates,
            environment=planned.environment,
            lower_bounds=planned.lower_bounds,
            mode=planned.mode,
        )
        with pytest.raises(InvalidInstanceError):
            hacked.to_dict()


class TestRunStage:
    def test_run_funnels_into_engine(self):
        spec = JobSpec.a2a([3, 5, 2, 7, 4], q=12, method=None)
        planned = plan(spec, SERIAL_ENV)

        def reduce_fn(reducer, values):
            yield reducer, sorted(i for i, _ in values)

        result = run(planned, [f"r{i}" for i in range(5)], reduce_fn)
        assert result.engine.backend == "serial"
        assert result.metrics.num_reducers == planned.chosen_score.num_reducers

    def test_run_respects_config_override(self):
        planned = plan(JobSpec.a2a([2, 2, 2, 2], q=8), SERIAL_ENV)

        def reduce_fn(reducer, values):
            yield reducer, len(values)

        result = run(
            planned,
            list("abcd"),
            reduce_fn,
            config=ExecutionConfig(backend="threads", num_workers=2),
        )
        assert result.engine.backend == "threads"

    def test_multiway_plans_do_not_run_on_engine(self):
        planned = plan(JobSpec.multiway([2, 2, 2], q=9, r=3), ENV)
        with pytest.raises(InvalidInstanceError):
            run(planned, list("abc"), lambda k, v: [])

    def test_plan_schema_convenience(self):
        schema = plan_schema(JobSpec.a2a([2] * 6, q=8), ENV)
        assert schema.num_reducers == 3
