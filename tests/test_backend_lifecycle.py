"""Backend pool lifecycle: explicit open/close, reuse across engine runs.

The satellite regression this file pins: two consecutive
``execute_schema`` runs on one ``processes`` backend instance must NOT
spawn a second worker pool.  Pool constructions are observable through
``Backend.pools_created``.
"""

from __future__ import annotations

from repro.core.instance import A2AInstance
from repro.core.selector import solve_a2a
from repro.engine.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.engine.engine import execute_schema

INSTANCE = A2AInstance([3, 5, 2, 7, 4], q=12)
SCHEMA = solve_a2a(INSTANCE)
RECORDS = [f"rec-{i}" for i in range(INSTANCE.m)]


def tally_reduce(key, values):
    """Module-level so the processes backend can pickle it."""
    yield key, sorted(i for i, _ in values)


class TestExplicitLifecycle:
    def test_open_is_idempotent_and_close_releases(self):
        backend = ThreadBackend(max_workers=2)
        assert not backend.is_open
        backend.open()
        backend.open()
        assert backend.is_open
        assert backend.pools_created == 1
        assert backend.run_tasks(str, [1, 2]) == ["1", "2"]
        backend.close()
        assert not backend.is_open

    def test_persistent_pool_survives_context_exits(self):
        backend = ThreadBackend(max_workers=2)
        backend.open()
        with backend:
            backend.run_tasks(str, [1])
        # The engine wraps runs in a context; a persistently opened pool
        # must survive that.
        assert backend.is_open
        backend.close()
        assert not backend.is_open

    def test_scoped_context_still_closes(self):
        backend = ThreadBackend(max_workers=2)
        with backend:
            assert backend.is_open
        assert not backend.is_open
        assert backend.pools_created == 1

    def test_close_then_reopen_counts_pools(self):
        backend = ThreadBackend(max_workers=2)
        backend.open()
        backend.close()
        backend.open()
        assert backend.pools_created == 2
        backend.close()

    def test_serial_backend_is_poolless(self):
        backend = SerialBackend()
        backend.open()
        assert not backend.is_open
        assert backend.pools_created == 0
        backend.close()


class TestEngineReusesCallerPool:
    def test_two_process_runs_share_one_pool(self):
        """The satellite regression: no second pool on the second run."""
        backend = ProcessBackend(max_workers=1)
        try:
            first = execute_schema(SCHEMA, RECORDS, tally_reduce, backend=backend)
            assert backend.pools_created == 1
            assert backend.is_open  # engine left the caller's pool open
            second = execute_schema(SCHEMA, RECORDS, tally_reduce, backend=backend)
            assert backend.pools_created == 1
            assert first.outputs == second.outputs
        finally:
            backend.close()
        assert not backend.is_open

    def test_two_thread_runs_share_one_pool(self):
        backend = ThreadBackend(max_workers=2)
        try:
            for _ in range(3):
                execute_schema(SCHEMA, RECORDS, tally_reduce, backend=backend)
            assert backend.pools_created == 1
        finally:
            backend.close()

    def test_caller_context_lifecycle_is_respected(self):
        """A pool opened by the caller's own context closes at their exit."""
        backend = ThreadBackend(max_workers=2)
        with backend:
            execute_schema(SCHEMA, RECORDS, tally_reduce, backend=backend)
            execute_schema(SCHEMA, RECORDS, tally_reduce, backend=backend)
            assert backend.pools_created == 1
        assert not backend.is_open

    def test_named_backend_still_scoped_per_run(self):
        """Passing a backend *name* keeps the historical one-pool-per-run
        lifecycle (nothing outlives the run)."""
        result = execute_schema(SCHEMA, RECORDS, tally_reduce, backend="threads")
        assert result.outputs
