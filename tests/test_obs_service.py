"""End-to-end observability: service traces, metrics, logs, and the CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.engine.quickbench import check_baseline
from repro.obs.store import load_observations
from repro.obs.trace import Tracer, validate_chrome_trace
from repro.planner import JobSpec
from repro.service import JobService
from repro.service.events import EventLog, JobEvent


def _parse_ndjson(text: str) -> list[dict]:
    return [json.loads(line) for line in text.splitlines() if line.strip()]


SPEC_SIZES = [3, 5, 2, 7, 4]


class TestServiceTracing:
    def test_executed_job_produces_nested_trace(self, tmp_path):
        tracer = Tracer()
        obs_log = tmp_path / "obs.ndjson"
        service = JobService(slots=1, tracer=tracer, obs_log=str(obs_log))
        try:
            handle = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            assert handle.wait(timeout=60.0).state == "done"
            service.drain()
        finally:
            service.close()

        spans = tracer.spans()
        by_name: dict[str, list] = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        for required in (
            "job",
            "submit",
            "queue",
            "plan",
            "map",
            "map_task",
            "shuffle",
            "reduce",
            "reduce_task",
            "post",
            "store",
            "job:queued",
            "job:running",
            "job:done",
        ):
            assert required in by_name, sorted(by_name)

        # Every span belongs to the job's trace (trace id == job id).
        job_id = handle.job_id
        assert {span.trace_id for span in spans} == {job_id}

        # Nesting: service phases parent to the root job span, task spans
        # to their phase span.
        root = by_name["job"][0]
        for name in ("submit", "queue", "plan", "map", "store"):
            assert by_name[name][0].parent_id == root.span_id, name
        map_span = by_name["map"][0]
        for task in by_name["map_task"]:
            assert task.parent_id == map_span.span_id

        # The trace exports as valid Chrome trace-event JSON.
        from repro.obs.trace import to_chrome_trace

        events = validate_chrome_trace(to_chrome_trace(spans))
        assert len(events) == len(spans)

        # The completed job left one observation in memory and on disk.
        records = load_observations(str(obs_log))
        assert [r.job_id for r in records] == [job_id]
        assert records[0].backend and records[0].wall_seconds >= 0

    def test_two_jobs_get_distinct_trace_ids(self):
        tracer = Tracer()
        service = JobService(slots=1, tracer=tracer)
        try:
            first = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            second = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            assert first.wait(timeout=60.0).state == "done"
            assert second.wait(timeout=60.0).state == "done"
            service.drain()
        finally:
            service.close()
        trace_ids = {span.trace_id for span in tracer.spans()}
        assert trace_ids == {first.job_id, second.job_id}

    def test_metrics_snapshot_counts_jobs_and_cache(self):
        service = JobService(slots=1)
        try:
            first = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            second = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            first.wait(timeout=60.0)
            second.wait(timeout=60.0)
            service.drain()
            snapshot = service.metrics_snapshot()
        finally:
            service.close()
        assert snapshot["counters"]["jobs.submitted"] == 2
        assert snapshot["counters"]["jobs.done"] == 2
        assert snapshot["counters"]["plan_cache.hits"] == 1
        assert snapshot["counters"]["plan_cache.misses"] == 1
        assert snapshot["histograms"]["job.latency_seconds"]["count"] == 2
        assert snapshot["plan_cache"]["hit_rate"] == 0.5
        assert "scheduler.queue_depth" in snapshot["gauges"]

    def test_untraced_service_stays_quiet(self):
        service = JobService(slots=1)
        try:
            handle = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            assert handle.wait(timeout=60.0).state == "done"
            service.drain()
        finally:
            service.close()
        assert len(service.tracer) == 0
        assert service.tracer.spans() == []


class TestServiceHealth:
    def _repro_threads(self):
        return [
            t for t in threading.enumerate() if t.name.startswith("repro-")
        ]

    def test_health_snapshot_slos_after_jobs(self):
        service = JobService(slots=2)
        try:
            good = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            # Sizes 7 and 6 cannot pair under q=12: planning fails, the
            # job lands in 'failed', and the rolling failure rate sees it.
            bad = service.submit_spec(JobSpec.a2a([7, 6], 12))
            assert good.wait(timeout=60.0).state == "done"
            assert bad.wait(timeout=60.0).state == "failed"
            service.drain()
            health = service.health_snapshot()
        finally:
            service.close()
        assert health["status"] == "ok"
        assert health["slots"] == 2
        assert health["jobs_done"] == 1 and health["jobs_failed"] == 1
        assert health["window_jobs"] == 2
        assert health["failure_rate"] == pytest.approx(0.5)
        assert health["queue_p95_s"] >= health["queue_p50_s"] >= 0.0
        assert health["uptime_seconds"] > 0.0
        assert health["peak_rss_bytes"] > 0
        assert health["pool_rebuilds"] == 0
        closed = service.health_snapshot()
        assert closed["status"] == "closing"
        assert closed["sampler_running"] is False

    def test_sampler_starts_lazily_and_close_stops_it(self):
        service = JobService(slots=1)
        try:
            # Plan-only work never starts the sampler thread.
            service.submit_spec(
                JobSpec.a2a(SPEC_SIZES, 12), execute=False
            ).wait(timeout=60.0)
            assert not service.health_snapshot()["sampler_running"]
            # The first executed job starts it.
            service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12)).wait(
                timeout=60.0
            )
            assert service.health_snapshot()["sampler_running"]
            assert self._repro_threads()
        finally:
            service.close()
        # No stray repro-* threads after close — the chaos-smoke contract.
        assert self._repro_threads() == []

    def test_observation_carries_commit_hardware_and_resources(
        self, tmp_path
    ):
        obs_log = tmp_path / "obs.ndjson"
        service = JobService(slots=1, obs_log=str(obs_log))
        try:
            handle = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
            assert handle.wait(timeout=60.0).state == "done"
            service.drain()
        finally:
            service.close()
        (record,) = load_observations(str(obs_log))
        assert record.commit, "commit must be resolved (env or git)"
        assert record.hardware_class.endswith("w")
        assert record.peak_rss_bytes > 0
        assert record.cpu_seconds >= 0.0

    def test_service_profiler_accumulates_phases_across_jobs(self):
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler(sample_interval=0.005)
        service = JobService(slots=1, profiler=profiler)
        try:
            for _ in range(2):
                handle = service.submit_spec(JobSpec.a2a(SPEC_SIZES, 12))
                assert handle.wait(timeout=60.0).state == "done"
            service.drain()
        finally:
            service.close()
        phases = profiler.phases()
        assert {"map", "shuffle", "reduce", "post"} <= set(phases)
        assert phases["map"]["count"] == 2
        # close() stopped the shared sampler along with the service.
        assert not profiler.sampler.running


class TestEventLogOrdering:
    def test_seq_is_gapless_and_matches_append_order(self):
        log = EventLog()
        emitted = [
            log.emit(JobEvent(job_id=f"j{i}", state="queued"))
            for i in range(5)
        ]
        assert [event.seq for event in emitted] == [1, 2, 3, 4, 5]
        assert [event.seq for event in log.snapshot()] == [1, 2, 3, 4, 5]

    def test_concurrent_emitters_never_share_a_seq(self):
        log = EventLog()

        def emit_many(job_id: str) -> None:
            for _ in range(100):
                log.emit(JobEvent(job_id=job_id, state="running"))

        threads = [
            threading.Thread(target=emit_many, args=(f"j{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [event.seq for event in log.snapshot()]
        assert seqs == sorted(seqs)
        assert seqs == list(range(1, 401))

    def test_events_carry_monotonic_timestamp(self):
        log = EventLog()
        first = log.emit(JobEvent(job_id="a", state="queued"))
        second = log.emit(JobEvent(job_id="a", state="running"))
        assert second.monotonic >= first.monotonic
        payload = second.to_dict()
        assert payload["seq"] == 2 and "monotonic" in payload

    def test_tracer_receives_lifecycle_instants(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        log.emit(JobEvent(job_id="job-7", state="done"))
        spans = tracer.spans()
        assert [span.name for span in spans] == ["job:done"]
        assert spans[0].trace_id == "job-7"
        assert spans[0].attrs["seq"] == 1


class TestCheckBaseline:
    ROWS = [
        {"scenario": "map_heavy", "backend": "serial", "wall_s": 0.30},
        {"scenario": "map_heavy", "backend": "threads", "wall_s": 0.20},
    ]

    def baseline(self, serial=0.30, **extra):
        return {
            "workers": 4,
            "params": {"scale": 1.0},
            "rows": [
                {"scenario": "map_heavy", "backend": "serial", "wall_s": serial},
                {"scenario": "map_heavy", "backend": "threads", "wall_s": 0.20},
            ],
            **extra,
        }

    def test_passes_within_bound(self):
        failures, notes = check_baseline(
            self.ROWS, self.baseline(), workers=4, params={"scale": 1.0}
        )
        assert failures == [] and notes == []

    def test_fails_on_slowdown(self):
        failures, _ = check_baseline(
            self.ROWS, self.baseline(serial=0.10), workers=4,
            params={"scale": 1.0},
        )
        assert len(failures) == 1
        assert "map_heavy/serial" in failures[0]

    def test_different_worker_count_skips_with_note(self):
        failures, notes = check_baseline(
            self.ROWS, self.baseline(), workers=2, params={"scale": 1.0}
        )
        assert failures == []
        assert notes and "workers" in notes[0]

    def test_different_params_skip_with_note(self):
        failures, notes = check_baseline(
            self.ROWS, self.baseline(), workers=4, params={"scale": 0.5}
        )
        assert failures == []
        assert notes and "params differ" in notes[0]

    def test_same_class_but_nothing_compared_fails(self):
        baseline = {
            "workers": 4,
            "rows": [
                {"scenario": "map_heavy", "backend": "serial", "wall_s": 0.001}
            ],
        }
        failures, _ = check_baseline(self.ROWS, baseline, workers=4)
        assert failures and "compared nothing" in failures[0]


class TestObservabilityCli:
    def test_submit_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        exit_code = main(
            [
                "submit",
                "--sizes",
                "3,5,2,7",
                "--q",
                "12",
                "--trace",
                str(trace_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err
        events = validate_chrome_trace(json.loads(trace_path.read_text()))
        names = {event["name"] for event in events}
        for required in ("job", "submit", "queue", "plan", "map", "reduce"):
            assert required in names, sorted(names)

    def test_submit_profile_writes_valid_export(self, tmp_path, capsys):
        from repro.obs.profiler import validate_collapsed

        profile_path = tmp_path / "profile.json"
        exit_code = main(
            [
                "submit",
                "--sizes",
                "3,5,2,7",
                "--q",
                "12",
                "--profile",
                str(profile_path),
            ]
        )
        assert exit_code == 0
        assert "profile:" in capsys.readouterr().err
        payload = json.loads(profile_path.read_text())
        assert {"map", "shuffle", "reduce", "post"} <= set(payload["phases"])
        assert payload["peak_rss_bytes"] > 0
        assert validate_collapsed(payload["collapsed"]) == len(
            payload["collapsed"]
        )

    def test_serve_streams_spans_and_answers_metrics(self, tmp_path, capsys):
        requests = tmp_path / "jobs.ndjson"
        requests.write_text(
            json.dumps(
                {"id": "j1", "spec": {"kind": "a2a", "q": 12, "sizes": SPEC_SIZES}}
            )
            + "\n"
            + json.dumps({"metrics": True})
            + "\n"
            + json.dumps({"health": True})
            + "\n"
        )
        trace_path = tmp_path / "trace.json"
        obs_path = tmp_path / "obs.ndjson"
        exit_code = main(
            [
                "serve",
                "--input",
                str(requests),
                "--trace",
                str(trace_path),
                "--obs-log",
                str(obs_path),
            ]
        )
        assert exit_code == 0
        lines = _parse_ndjson(capsys.readouterr().out)
        kinds = {line["event"] for line in lines}
        assert {"status", "result", "span", "metrics", "health"} <= kinds
        metrics_line = next(l for l in lines if l["event"] == "metrics")
        assert metrics_line["counters"]["jobs.submitted"] >= 1
        assert "plan_cache" in metrics_line
        health_line = next(l for l in lines if l["event"] == "health")
        assert health_line["status"] == "ok"
        for key in (
            "slot_utilization",
            "queue_p50_s",
            "queue_p95_s",
            "failure_rate",
            "pool_rebuilds",
            "peak_rss_bytes",
        ):
            assert key in health_line, key
        validate_chrome_trace(json.loads(trace_path.read_text()))
        assert len(load_observations(str(obs_path))) == 1

    def test_metrics_command_summarizes_log(self, tmp_path, capsys):
        requests = tmp_path / "jobs.ndjson"
        requests.write_text(
            "".join(
                json.dumps(
                    {
                        "id": f"j{i}",
                        "spec": {"kind": "a2a", "q": 12, "sizes": SPEC_SIZES},
                    }
                )
                + "\n"
                for i in range(2)
            )
        )
        obs_path = tmp_path / "obs.ndjson"
        assert (
            main(
                [
                    "serve",
                    "--input",
                    str(requests),
                    "--quiet",
                    "--obs-log",
                    str(obs_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["metrics", "--log", str(obs_path)]) == 0
        table = capsys.readouterr().out
        assert "job observations (2 records)" in table
        assert "cache_hit_rate" in table

        assert main(["metrics", "--log", str(obs_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["observations"] == 2
        assert payload["rows"][0]["jobs"] == 2

    def test_metrics_command_missing_log_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics", "--log", str(tmp_path / "nope.ndjson")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_bench_baseline_gate_round_trip(self, tmp_path, capsys):
        baseline_path = tmp_path / "base.json"
        args = [
            "bench",
            "--backends",
            "serial",
            "--scale",
            "0.05",
            "--tuples",
            "60",
        ]
        assert main(args + ["--json-out", str(baseline_path)]) == 0
        payload = json.loads(baseline_path.read_text())
        assert "workers" in payload and "params" in payload
        capsys.readouterr()
        # Same params, same machine: the gate runs (tiny walls are skipped
        # with notes, and check_regression needs threads rows, so no
        # --check here — just the comparison plumbing).
        assert main(args + ["--baseline", str(baseline_path)]) == 0
