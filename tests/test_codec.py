"""Property-style tests for the block codec layer.

The codec is the foundation of the batched data plane: every shuffle
block and spill run round-trips through it, so the contract is strict —
exact-type key preservation (``True`` must never come back as ``1``),
insertion-order preservation, and ``CodecError`` (never ``struct.error``
/ ``EOFError`` / ``UnicodeDecodeError``) on every malformed input.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.engine.codec import (
    BLOCK_MAGIC,
    CODEC_BYTES,
    CODEC_INT,
    CODEC_PICKLE,
    CODEC_STR,
    _HEADER,
    decode_block,
    decode_block_groups,
    encode_groups,
    encode_items,
    select_codec,
)
from repro.exceptions import CodecError, ReproError

INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)


def roundtrip(items, codec=None):
    if codec is None:
        codec = select_codec(key for key, _ in items)
    return decode_block(encode_items(items, codec))


class TestSelectCodec:
    def test_typed_probes(self):
        assert select_codec([1, -5, 10**12]) == CODEC_INT
        assert select_codec(["a", "", "é中"]) == CODEC_STR
        assert select_codec([b"", b"\xff\x00"]) == CODEC_BYTES

    def test_mixed_and_exotic_probes_fall_back(self):
        assert select_codec([1, "a"]) == CODEC_PICKLE
        assert select_codec([("t", 1), ("t", 2)]) == CODEC_PICKLE
        assert select_codec([None]) == CODEC_PICKLE
        assert select_codec([3.25]) == CODEC_PICKLE
        assert select_codec([]) == CODEC_PICKLE

    def test_bool_is_not_int(self):
        # struct would pack True as 1; the probe must refuse so the
        # decoded key compares *and types* identically.
        assert select_codec([True, False]) == CODEC_PICKLE
        assert select_codec([1, True]) == CODEC_PICKLE

    def test_subclasses_disqualify(self):
        class MyStr(str):
            pass

        class MyInt(int):
            pass

        assert select_codec([MyStr("x")]) == CODEC_PICKLE
        assert select_codec([MyInt(3)]) == CODEC_PICKLE


class TestRoundTrip:
    @pytest.mark.parametrize(
        "keys",
        [
            [0, 1, -17, 10**12, INT64_MAX, INT64_MIN],
            ["", "word", "unicode-é中", "emoji-🎉", "a" * 5000],
            [b"", b"raw", b"\xff\xfe\x00\x80", bytes(range(256))],
            [("light", 7), ("hh", 3, 12), (), None, 3.25, frozenset({1})],
        ],
    )
    def test_typed_and_fallback_keys(self, keys):
        items = [(key, [index, "v"]) for index, key in enumerate(keys)]
        assert roundtrip(items) == items

    def test_decoded_types_are_exact(self):
        items = [(True, [1]), (False, [2]), (1, [3]), (0, [4])]
        decoded = roundtrip(items)
        assert [type(key) for key, _ in decoded] == [bool, bool, int, int]
        assert decoded == items

    def test_lone_surrogates_round_trip(self):
        # surrogatepass makes the str codec a bijection on str.
        keys = ["\ud800", "ok\udfff-tail", "😀"]
        items = [(key, [key]) for key in keys]
        block = encode_items(items, CODEC_STR)
        assert decode_block(block) == items

    def test_empty_block(self):
        for codec in (CODEC_INT, CODEC_STR, CODEC_BYTES, CODEC_PICKLE):
            assert decode_block(encode_items([], codec)) == []
        assert decode_block_groups(encode_groups({})) == {}

    def test_insertion_order_preserved(self):
        groups = {f"k{i}": [i] for i in (7, 2, 9, 0, 5)}
        decoded = decode_block_groups(encode_groups(groups, CODEC_STR))
        assert list(decoded) == list(groups)
        assert decoded == groups

    def test_values_can_be_arbitrary_objects(self):
        items = [
            (1, [("tuple", 2), {"nested": [1, 2]}, None]),
            (2, [b"\x00\xff", frozenset({3})]),
        ]
        assert roundtrip(items, CODEC_INT) == items

    def test_decode_accepts_memoryview(self):
        items = [(5, [1]), (6, [2])]
        block = encode_items(items, CODEC_INT)
        view = memoryview(block)
        assert decode_block(view) == items
        # decode released its internal views; the caller's is untouched.
        assert view.obj is block


class TestPerBlockFallback:
    """The probe is per-phase; each block still re-verifies its keys."""

    def test_mismatched_block_falls_back_silently(self):
        items = [("str-key", [1]), ("other", [2])]
        block = encode_items(items, CODEC_INT)  # probe said int; keys are str
        assert block[1:2] == CODEC_PICKLE
        assert decode_block(block) == items

    def test_out_of_range_int_falls_back(self):
        items = [(INT64_MAX + 1, [1]), (INT64_MIN - 1, [2])]
        block = encode_items(items, CODEC_INT)
        assert block[1:2] == CODEC_PICKLE
        assert decode_block(block) == items

    def test_bool_key_under_int_codec_falls_back(self):
        items = [(True, [1])]
        block = encode_items(items, CODEC_INT)
        assert block[1:2] == CODEC_PICKLE
        (key, values), = decode_block(block)
        assert key is True and type(key) is bool and values == [1]

    def test_unknown_codec_rejected(self):
        with pytest.raises(CodecError, match="unknown block codec"):
            encode_items([(1, [2])], b"z")

    def test_unpicklable_values_raise_codec_error(self):
        with pytest.raises(CodecError, match="not picklable"):
            encode_items([(1, [lambda: None])], CODEC_INT)


class TestMalformedInput:
    """Every corruption mode must surface as CodecError — a repro type —
    never as a bare struct/pickle/unicode exception."""

    def test_codec_error_is_a_repro_error(self):
        assert issubclass(CodecError, ReproError)

    @pytest.mark.parametrize(
        "buf",
        [
            b"",
            b"\xb5",
            b"\xb5i\x01\x00",
            bytes(_HEADER.size - 1),
        ],
    )
    def test_truncated_header(self, buf):
        with pytest.raises(CodecError, match="truncated block"):
            decode_block(buf)

    def test_bad_magic(self):
        block = bytearray(encode_items([(1, [2])], CODEC_INT))
        block[0] = 0x00
        with pytest.raises(CodecError, match="bad block magic"):
            decode_block(bytes(block))

    def test_unknown_codec_id(self):
        block = bytearray(encode_items([(1, [2])], CODEC_INT))
        block[1] = ord("z")
        with pytest.raises(CodecError, match="unknown block codec"):
            decode_block(bytes(block))

    def test_truncated_body(self):
        block = encode_items([(1, [2]), (2, [3])], CODEC_INT)
        with pytest.raises(CodecError, match="does not match header"):
            decode_block(block[:-3])

    def test_trailing_garbage(self):
        block = encode_items([(1, [2])], CODEC_INT)
        with pytest.raises(CodecError, match="does not match header"):
            decode_block(block + b"extra")

    def test_int_key_section_size_mismatch(self):
        # Claim 3 items but supply an int key section sized for 2.
        key_blob = struct.pack("<2q", 1, 2)
        value_blob = pickle.dumps([[1], [2], [3]])
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_INT, 3, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="int key section"):
            decode_block(header + key_blob + value_blob)

    def test_str_length_prefixes_disagree_with_section(self):
        block = bytearray(encode_items([("abc", [1])], CODEC_STR))
        # Bump the single length prefix from 3 to 4.
        struct.pack_into("<I", block, _HEADER.size, 4)
        with pytest.raises(CodecError, match="length prefixes"):
            decode_block(bytes(block))

    def test_str_section_too_short_for_prefixes(self):
        value_blob = pickle.dumps([[1], [2]])
        header = _HEADER.pack(BLOCK_MAGIC, CODEC_STR, 2, 4, len(value_blob))
        buf = header + struct.pack("<I", 0) + value_blob
        with pytest.raises(CodecError, match="too short"):
            decode_block(buf)

    def test_non_utf8_str_keys_raise_codec_error(self):
        # Hand-build a str block whose key bytes are not decodable even
        # with surrogatepass (a bare continuation byte).
        raw = b"\x80"
        key_blob = struct.pack("<I", len(raw)) + raw
        value_blob = pickle.dumps([[1]])
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_STR, 1, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="undecodable str key"):
            decode_block(header + key_blob + value_blob)

    def test_corrupt_pickled_key_section(self):
        key_blob = b"not a pickle"
        value_blob = pickle.dumps([[1]])
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_PICKLE, 1, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="key section"):
            decode_block(header + key_blob + value_blob)

    def test_pickled_key_section_wrong_count(self):
        key_blob = pickle.dumps([1, 2, 3])
        value_blob = pickle.dumps([[1]])
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_PICKLE, 1, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="declared key list"):
            decode_block(header + key_blob + value_blob)

    def test_corrupt_value_section(self):
        key_blob = struct.pack("<1q", 1)
        value_blob = b"\x80\x05 not a pickle stream"
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_INT, 1, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="value section"):
            decode_block(header + key_blob + value_blob)

    def test_value_section_wrong_count(self):
        key_blob = struct.pack("<2q", 1, 2)
        value_blob = pickle.dumps([[1]])
        header = _HEADER.pack(
            BLOCK_MAGIC, CODEC_INT, 2, len(key_blob), len(value_blob)
        )
        with pytest.raises(CodecError, match="declared value lists"):
            decode_block(header + key_blob + value_blob)

    def test_random_garbage_never_leaks_builtin_errors(self):
        payloads = [
            bytes([BLOCK_MAGIC]) + b"i" + bytes(12),
            bytes([BLOCK_MAGIC]) + b"p" + b"\xff" * 20,
            encode_items([(1, [1])], CODEC_INT)[::-1],
            b"\x00" * 64,
        ]
        for payload in payloads:
            with pytest.raises(CodecError):
                decode_block(payload)


class TestLintScope:
    """The codec and shm modules sit inside the engine package, so the
    determinism and pickle-safety rules must cover them automatically."""

    def test_data_plane_modules_are_in_rule_scopes(self):
        from pathlib import Path

        from repro.analysis.lint import load_module
        from repro.analysis.lint.rules import (
            DeterminismRule,
            PickleSafetyRule,
        )

        src = Path(__file__).parent.parent / "src"
        for name in ("codec", "shm"):
            info = load_module(src / "repro" / "engine" / f"{name}.py", root=src)
            assert info.module == f"repro.engine.{name}"
            assert info.in_package(DeterminismRule.scopes)
            assert info.in_package(PickleSafetyRule.scopes)
