"""Unit tests for the cluster scheduling model."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidInstanceError
from repro.mapreduce.cluster import SimulatedCluster, schedule_loads


class TestScheduleLoads:
    def test_single_worker_serializes(self):
        result = schedule_loads([3, 5, 2], 1)
        assert result.makespan == 10.0
        assert result.waves == 3

    def test_enough_workers_parallelizes(self):
        result = schedule_loads([3, 5, 2], 3)
        assert result.makespan == 5.0
        assert result.waves == 1

    def test_lpt_assignment(self):
        # LPT on [4,3,3,2,2] with 2 workers: 4 | 3, then 3 -> worker2 (6),
        # 2 -> worker1 (6), 2 -> either (8).  LPT yields 8 (optimum is 7,
        # within the classic 4/3 guarantee).
        result = schedule_loads([4, 3, 3, 2, 2], 2)
        assert result.makespan == 8.0
        assert result.makespan <= (4 / 3) * 7 + 1

    def test_empty_loads(self):
        result = schedule_loads([], 4)
        assert result.makespan == 0.0
        assert result.waves == 0
        assert result.utilization == 0.0

    def test_time_per_unit_scales(self):
        fast = schedule_loads([10], 1, time_per_unit=0.5)
        assert fast.makespan == 5.0

    def test_utilization_perfect_when_balanced(self):
        result = schedule_loads([5, 5, 5, 5], 4)
        assert result.utilization == pytest.approx(1.0)

    def test_utilization_below_one_when_imbalanced(self):
        result = schedule_loads([10, 1], 2)
        assert result.utilization < 1.0

    def test_makespan_at_least_volume_over_workers(self):
        loads = [7, 3, 9, 2, 8, 4]
        result = schedule_loads(loads, 3)
        assert result.makespan >= sum(loads) / 3

    def test_makespan_at_least_longest_task(self):
        result = schedule_loads([20, 1, 1], 3)
        assert result.makespan == 20.0

    def test_rejects_bad_workers(self):
        with pytest.raises(InvalidInstanceError):
            schedule_loads([1], 0)

    def test_rejects_bad_time_unit(self):
        with pytest.raises(InvalidInstanceError):
            schedule_loads([1], 1, time_per_unit=0)


class TestSimulatedCluster:
    def test_schedule_delegates(self):
        cluster = SimulatedCluster(num_workers=2, reducer_capacity=10)
        assert cluster.schedule([4, 4]).makespan == 4.0

    def test_rejects_bad_config(self):
        with pytest.raises(InvalidInstanceError):
            SimulatedCluster(num_workers=0, reducer_capacity=10)
        with pytest.raises(InvalidInstanceError):
            SimulatedCluster(num_workers=2, reducer_capacity=0)

    def test_time_per_unit_applied(self):
        cluster = SimulatedCluster(2, 10, time_per_unit=2.0)
        assert cluster.schedule([3]).makespan == 6.0
