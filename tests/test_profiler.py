"""Continuous profiler: sampler lifecycle, phase capture, export format."""

import threading

import pytest

from repro.engine.config import ExecutionConfig
from repro.engine.engine import ExecutionEngine
from repro.engine.quickbench import run_profile_overhead, run_scenario
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    ResourceSampler,
    as_profiler,
    merge_stats,
    profile_worker_task,
    read_cpu_seconds,
    read_rss_bytes,
    validate_collapsed,
)


def _repro_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-")
    ]


class TestResourceSampler:
    def test_reads_are_positive_on_linux(self):
        assert read_rss_bytes() > 0
        assert read_cpu_seconds() > 0.0

    def test_start_stop_idempotent_and_thread_named(self):
        sampler = ResourceSampler(interval=0.005)
        assert not sampler.running
        sampler.start()
        sampler.start()
        assert sampler.running
        names = [t.name for t in _repro_threads()]
        assert ResourceSampler.THREAD_NAME in names
        sampler.stop()
        sampler.stop()
        assert not sampler.running
        assert ResourceSampler.THREAD_NAME not in [
            t.name for t in _repro_threads()
        ]
        # start() and stop() each take one bracketing sample.
        assert len(sampler) >= 2

    def test_peak_rss_windowed_and_always_fresh(self):
        sampler = ResourceSampler(interval=0.005)
        # Never started: the query still reads the process right now.
        assert sampler.peak_rss_bytes() > 0
        t0, _, _ = sampler.sample_now()
        assert sampler.peak_rss_bytes(since=t0) > 0
        # A window starting after the last sample still reports fresh RSS.
        assert sampler.peak_rss_bytes(since=t0 + 1e9) > 0

    def test_bounded_window(self):
        sampler = ResourceSampler(interval=0.005, max_samples=4)
        for _ in range(10):
            sampler.sample_now()
        assert len(sampler) == 4

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0.0)

    def test_context_manager(self):
        with ResourceSampler(interval=0.005) as sampler:
            assert sampler.running
        assert not sampler.running


class TestNullProfiler:
    def test_singleton_is_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.worker_context() is None
        with NULL_PROFILER.phase("map", capture=True):
            pass
        NULL_PROFILER.add_counter("map", bytes=10)
        assert len(NULL_PROFILER) == 0
        assert not NULL_PROFILER.sampler.running
        payload = NULL_PROFILER.to_dict()
        assert payload["phases"] == {} and payload["collapsed"] == []

    def test_as_profiler_normalizes_none(self):
        assert as_profiler(None) is NULL_PROFILER
        live = PhaseProfiler(autostart=False)
        assert as_profiler(live) is live
        live.stop()

    def test_merge_worker_results_unwraps(self):
        raw = [(1, {"f": [1, 0.1, 0.1]}), (2, {})]
        assert NullProfiler().merge_worker_results("map", raw) == [1, 2]


class TestPhaseProfiler:
    def test_phase_accumulates_across_occurrences(self):
        profiler = PhaseProfiler(autostart=False)
        with profiler.phase("map"):
            pass
        with profiler.phase("map"):
            pass
        profiler.stop()
        entry = profiler.phases()["map"]
        assert entry["count"] == 2
        assert entry["wall_seconds"] >= 0.0
        assert entry["peak_rss_bytes"] > 0

    def test_capture_records_function_table(self):
        profiler = PhaseProfiler(autostart=False)
        with profiler.phase("post", capture=True):
            sorted(range(1000), key=lambda v: -v)
        profiler.stop()
        functions = profiler.phases()["post"]["functions"]
        assert functions, "capture=True must produce a function table"
        for key, row in functions.items():
            assert len(row) == 3 and row[0] >= 1

    def test_nested_capture_degrades_instead_of_fighting(self):
        # cProfile cannot nest on one thread: an inline worker task under
        # a capturing phase must yield, not raise (the serial backend).
        profiler = PhaseProfiler(autostart=False)
        with profiler.phase("post", capture=True):
            result, stats = profile_worker_task(3, inner=lambda v: v * 2)
        profiler.stop()
        assert result == 6 and stats == {}

    def test_worker_task_roundtrip_and_merge(self):
        result, stats = profile_worker_task(
            list(range(50)), inner=lambda vs: sum(vs)
        )
        assert result == sum(range(50))
        assert stats, "an unnested capture must produce stats"
        profiler = PhaseProfiler(autostart=False)
        merged = profiler.merge_worker_results(
            "map", [(result, stats), (result, stats)]
        )
        assert merged == [result, result]
        table = profiler.phases()["map"]["functions"]
        # Folding the same table twice doubles every call count.
        for key in stats:
            assert table[key][0] == stats[key][0] * 2

    def test_merge_stats_sums_per_key(self):
        into = {"a": [1.0, 0.5, 0.6]}
        merge_stats(into, {"a": [2.0, 0.25, 0.3], "b": [1.0, 0.1, 0.1]})
        assert into["a"] == pytest.approx([3.0, 0.75, 0.9])
        assert into["b"] == [1.0, 0.1, 0.1]

    def test_record_and_counters(self):
        profiler = PhaseProfiler(autostart=False)
        profiler.record("spill", 0.5, bytes=100, runs=2)
        profiler.record("spill", 0.25, bytes=50, runs=1)
        entry = profiler.phases()["spill"]
        assert entry["wall_seconds"] == pytest.approx(0.75)
        assert entry["counters"] == {"bytes": 150, "runs": 3}

    def test_to_dict_and_collapsed_validate(self):
        profiler = PhaseProfiler(autostart=False)
        with profiler.phase("post", capture=True):
            sorted(range(2000), key=lambda v: -v)
        profiler.record("spill", 0.5)
        profiler.stop()
        payload = profiler.to_dict()
        assert payload["version"] == 1
        assert set(payload["phases"]) == {"post", "spill"}
        post = payload["phases"]["post"]
        assert post["functions"], "export keeps the function table"
        tots = [row["tottime_s"] for row in post["functions"]]
        assert tots == sorted(tots, reverse=True)
        assert validate_collapsed(payload["collapsed"]) == len(
            payload["collapsed"]
        )
        # The capture-free spill phase falls back to a phase-level line.
        assert any(
            line.startswith("spill ") for line in payload["collapsed"]
        )

    def test_write_is_atomic_json_and_stops_sampler(self, tmp_path):
        import json

        profiler = PhaseProfiler(sample_interval=0.005)
        with profiler.phase("map"):
            pass
        path = tmp_path / "profile.json"
        payload = profiler.write(str(path))
        assert not profiler.sampler.running
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(payload, default=str)
        )

    def test_autostart_starts_sampler_on_phase(self):
        profiler = PhaseProfiler(sample_interval=0.005)
        assert not profiler.sampler.running
        with profiler.phase("map"):
            assert profiler.sampler.running
        profiler.stop()
        assert not profiler.sampler.running


class TestValidateCollapsed:
    def test_accepts_flamegraph_format(self):
        lines = ["map;engine.py:10:run 120", "reduce 3"]
        assert validate_collapsed(lines) == 2

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="weight"):
            validate_collapsed(["map;f 0"])
        with pytest.raises(ValueError, match="weight"):
            validate_collapsed(["map;f -5"])
        with pytest.raises(ValueError, match="weight"):
            validate_collapsed(["map;f 1.5"])

    def test_rejects_missing_stack_or_empty_frame(self):
        with pytest.raises(ValueError, match="missing"):
            validate_collapsed(["justoneword"])
        with pytest.raises(ValueError, match="empty frame"):
            validate_collapsed(["map;;f 10"])


class TestEngineIntegration:
    def _run(self, backend, profiler, **config_kwargs):
        def map_fn(value):
            yield value % 4, value

        def reduce_fn(key, values):
            yield key, sum(values)

        engine = ExecutionEngine.from_config(
            ExecutionConfig(backend=backend, **config_kwargs),
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            reducer_capacity=10_000,
            profiler=profiler,
        )
        return engine.run(list(range(200)))

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_phases_and_worker_tables_recorded(self, backend):
        profiler = PhaseProfiler(sample_interval=0.005)
        result = self._run(backend, profiler)
        profiler.stop()
        phases = profiler.phases()
        assert {"map", "shuffle", "reduce", "post"} <= set(phases)
        assert phases["map"]["functions"], backend
        assert phases["reduce"]["functions"], backend
        assert validate_collapsed(profiler.collapsed_stacks()) > 0
        assert sorted(result.outputs) == sorted(
            self._run(backend, None).outputs
        )

    def test_spill_phase_recorded_under_memory_budget(self, tmp_path):
        profiler = PhaseProfiler(sample_interval=0.005)
        budgeted = self._run(
            "serial",
            profiler,
            memory_budget=16,
            spill_dir=str(tmp_path),
        )
        profiler.stop()
        assert budgeted.metrics.spill_runs > 0
        spill = profiler.phases()["spill"]
        assert spill["counters"]["runs"] == budgeted.metrics.spill_runs
        assert spill["counters"]["bytes"] == budgeted.metrics.spilled_bytes

    def test_null_profiler_leaves_no_trace_and_same_outputs(self):
        baseline = self._run("serial", None)
        nulled = self._run("serial", NULL_PROFILER)
        assert sorted(baseline.outputs) == sorted(nulled.outputs)
        assert len(NULL_PROFILER) == 0
        assert not NULL_PROFILER.sampler.running


class TestProfileOverheadBench:
    def test_modes_and_loose_bounds(self):
        rows = run_profile_overhead(
            scenario="map_heavy", backend="serial", scale=0.2, repeat=2
        )
        by_mode = {r["profiling"]: r for r in rows}
        assert set(by_mode) == {"off", "null", "on"}
        assert by_mode["off"]["functions"] == 0
        assert by_mode["null"]["functions"] == 0
        assert by_mode["on"]["phases"] > 0
        assert by_mode["on"]["functions"] > 0
        assert by_mode["on"]["peak_rss_mb"] > 0
        # Loose in-test sanity (the committed E25 artifact carries the
        # real ratios): a disabled profiler must not double the wall.
        off = float(by_mode["off"]["wall_s"])
        assert float(by_mode["null"]["wall_s"]) <= off * 1.25 + 0.05

    def test_run_scenario_accepts_profiler(self):
        profiler = PhaseProfiler(sample_interval=0.005)
        outputs, wall = run_scenario(
            "map_heavy", "serial", scale=0.2, profiler=profiler
        )
        profiler.stop()
        assert outputs and wall > 0
        assert "map" in profiler.phases()
