"""Unit tests for A2AInstance and X2YInstance."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


class TestA2AInstance:
    def test_basic_properties(self, small_a2a):
        assert small_a2a.m == 5
        assert small_a2a.total_size == 21
        assert small_a2a.num_pairs == 10

    def test_pairs_enumeration(self):
        instance = A2AInstance([1, 1, 1], 4)
        assert list(instance.pairs()) == [(0, 1), (0, 2), (1, 2)]

    def test_equal_sized_constructor(self):
        instance = A2AInstance.equal_sized(5, 3, 9)
        assert instance.sizes == (3, 3, 3, 3, 3)
        assert instance.q == 9

    def test_rejects_empty_sizes(self):
        with pytest.raises(InvalidInstanceError):
            A2AInstance([], 5)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(InvalidInstanceError):
            A2AInstance([3, 0], 5)

    def test_rejects_input_larger_than_q(self):
        with pytest.raises(InvalidInstanceError, match="cannot be assigned"):
            A2AInstance([3, 8], 5)

    def test_immutable(self, small_a2a):
        with pytest.raises(AttributeError):
            small_a2a.q = 100

    def test_max_inputs_per_reducer(self):
        instance = A2AInstance([1, 2, 3, 4, 5], 6)
        # Smallest first: 1+2+3 = 6 fits, +4 does not.
        assert instance.max_inputs_per_reducer() == 3

    def test_max_inputs_per_reducer_all_fit(self, small_a2a):
        assert A2AInstance([1, 1], 10).max_inputs_per_reducer() == 2

    def test_feasible_when_two_largest_fit(self):
        assert A2AInstance([6, 6, 1], 12).is_feasible()

    def test_infeasible_when_two_largest_do_not_fit(self):
        assert not A2AInstance([7, 6, 1], 12).is_feasible()

    def test_check_feasible_raises_with_offending_pair(self):
        instance = A2AInstance([7, 1, 6], 12)
        with pytest.raises(InfeasibleInstanceError) as excinfo:
            instance.check_feasible()
        assert excinfo.value.offending_pair == (0, 2)

    def test_single_input_always_feasible(self):
        assert A2AInstance([10], 10).is_feasible()

    def test_equal_sized_rejects_bad_m(self):
        with pytest.raises(InfeasibleInstanceError):
            A2AInstance.equal_sized(0, 1, 5)


class TestX2YInstance:
    def test_basic_properties(self, small_x2y):
        assert small_x2y.m == 3
        assert small_x2y.n == 3
        assert small_x2y.total_size == 28
        assert small_x2y.num_pairs == 9

    def test_pairs_enumeration(self):
        instance = X2YInstance([1], [1, 1], 4)
        assert list(instance.pairs()) == [(0, 0), (0, 1)]

    def test_equal_sized_constructor(self):
        instance = X2YInstance.equal_sized(2, 3, 4, 5, 10)
        assert instance.x_sizes == (3, 3)
        assert instance.y_sizes == (5, 5, 5, 5)

    def test_rejects_empty_side(self):
        with pytest.raises(InvalidInstanceError):
            X2YInstance([], [1], 5)
        with pytest.raises(InvalidInstanceError):
            X2YInstance([1], [], 5)

    def test_rejects_oversized_input_either_side(self):
        with pytest.raises(InvalidInstanceError):
            X2YInstance([9], [1], 5)
        with pytest.raises(InvalidInstanceError):
            X2YInstance([1], [9], 5)

    def test_feasibility_is_cross_pair(self):
        # Two 7s on the same side are fine; cross pair must fit.
        assert X2YInstance([7, 7], [3], 10).is_feasible()
        assert not X2YInstance([7, 7], [4], 10).is_feasible()

    def test_check_feasible_identifies_largest_pair(self):
        instance = X2YInstance([2, 7], [3, 6], 12)
        with pytest.raises(InfeasibleInstanceError) as excinfo:
            instance.check_feasible()
        assert excinfo.value.offending_pair == (1, 1)

    def test_immutable(self, small_x2y):
        with pytest.raises(AttributeError):
            small_x2y.q = 99
