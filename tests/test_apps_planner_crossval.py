"""Cross-validation: all five apps through JobSpec/plan/run vs direct paths.

Each application used to call ``solve_a2a``/``solve_x2y``/
``multiway_bin_combining`` directly and wire its own MapReduce job; it
now builds a :class:`~repro.planner.spec.JobSpec`, plans it, and (on the
engine path) funnels through :func:`repro.planner.run`.  These tests
reimplement the pre-refactor direct-call paths as oracles and assert the
refactored apps produce identical outputs — on the default simulator
path, on the engine path, and under full cost-based planning
(``method="planned"``, where a *different but valid* schema must still
yield the same application output).
"""

from __future__ import annotations

import pytest

from repro.apps.common_friends import run_common_friends
from repro.apps.similarity_join import run_similarity_join
from repro.apps.skew_join import naive_join, schema_skew_join
from repro.apps.tensor_product import distributed_outer_product
from repro.apps.threeway_similarity import (
    all_triples_above,
    run_threeway_similarity,
)
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.multiway import MultiwayInstance, multiway_bin_combining
from repro.core.selector import solve_a2a, solve_x2y
from repro.engine.config import ExecutionConfig
from repro.engine.routing import (
    a2a_meeting_table,
    a2a_memberships,
    canonical_meeting,
    x2y_memberships,
)
from repro.mapreduce.job import MapReduceJob
from repro.workloads.documents import all_pairs_above, generate_documents, jaccard
from repro.workloads.relations import generate_join_workload
from repro.workloads.social import common_friends, generate_users
from repro.workloads.vectors import generate_block_vector

SERIAL = ExecutionConfig(backend="serial")


def direct_similarity_pairs(documents, q, threshold):
    """The seed repo's simulator path: solve directly, wire the job by hand."""
    instance = A2AInstance([d.size for d in documents], q)
    schema = solve_a2a(instance, "auto")
    owners = a2a_meeting_table(schema)
    memberships = a2a_memberships(schema)
    position = {id(doc): i for i, doc in enumerate(documents)}

    def map_fn(doc):
        for r in memberships[position[id(doc)]]:
            yield r, doc

    def reduce_fn(key, docs):
        by_position = sorted(docs, key=lambda d: position[id(d)])
        for a_idx, doc_a in enumerate(by_position):
            i = position[id(doc_a)]
            for doc_b in by_position[a_idx + 1:]:
                j = position[id(doc_b)]
                if owners[(i, j)] != key:
                    continue
                similarity = jaccard(doc_a, doc_b)
                if similarity >= threshold:
                    yield (doc_a.doc_id, doc_b.doc_id, similarity)

    job = MapReduceJob(
        map_fn=map_fn, reduce_fn=reduce_fn, reducer_capacity=q, strict_capacity=True
    )
    return tuple(job.run(documents).outputs)


class TestSimilarityJoin:
    Q, THRESHOLD = 60, 0.15

    @pytest.fixture(scope="class")
    def documents(self):
        return generate_documents(24, self.Q, seed=31)

    def test_default_path_matches_direct_call(self, documents):
        direct = direct_similarity_pairs(documents, self.Q, self.THRESHOLD)
        run = run_similarity_join(documents, self.Q, self.THRESHOLD)
        assert run.pairs == direct

    def test_engine_path_matches_direct_call(self, documents):
        direct = direct_similarity_pairs(documents, self.Q, self.THRESHOLD)
        run = run_similarity_join(
            documents, self.Q, self.THRESHOLD, config=SERIAL
        )
        assert run.pairs == direct
        assert run.engine is not None

    def test_planned_mode_same_output_set(self, documents):
        truth = all_pairs_above(documents, self.THRESHOLD)
        run = run_similarity_join(
            documents, self.Q, self.THRESHOLD, method="planned"
        )
        assert run.pair_set() == truth
        assert run.plan is not None and run.plan.mode == "planned"
        assert run.engine is not None  # planned mode executes on the engine

    def test_plan_is_attached_and_consistent(self, documents):
        run = run_similarity_join(documents, self.Q, self.THRESHOLD)
        assert run.plan is not None
        assert run.plan.schema().num_reducers == run.schema.num_reducers


class TestSkewJoin:
    Q = 120

    @pytest.fixture(scope="class")
    def relations(self):
        return generate_join_workload(300, 300, 10, 1.3, seed=32)

    def test_default_path_matches_ground_truth(self, relations):
        x, y = relations
        run = schema_skew_join(x, y, self.Q)
        assert run.triple_set() == naive_join(x, y)
        assert run.heavy_keys  # the workload must actually exercise schemas

    def test_engine_and_planned_modes_agree(self, relations):
        x, y = relations
        default = schema_skew_join(x, y, self.Q)
        engine = schema_skew_join(x, y, self.Q, config=SERIAL)
        planned = schema_skew_join(x, y, self.Q, method="planned")
        assert engine.triple_set() == default.triple_set()
        assert planned.triple_set() == default.triple_set()
        assert planned.engine is not None
        assert planned.plans and all(
            p.mode == "planned" for p in planned.plans.values()
        )

    def test_planned_schemas_respect_capacity(self, relations):
        x, y = relations
        run = schema_skew_join(x, y, self.Q, method="planned")
        assert run.metrics.max_reducer_load <= self.Q
        assert run.metrics.capacity_violations == ()


class TestCommonFriends:
    Q = 40

    @pytest.fixture(scope="class")
    def users(self):
        return generate_users(16, self.Q, seed=33)

    def direct_pairs(self, users):
        """The seed repo's canonical_meeting closure path."""
        instance = A2AInstance([u.size for u in users], self.Q)
        schema = solve_a2a(instance, "auto")
        memberships = a2a_memberships(schema)
        position = {id(user): i for i, user in enumerate(users)}

        def map_fn(user):
            for r in memberships[position[id(user)]]:
                yield r, user

        def reduce_fn(key, members):
            ordered = sorted(members, key=lambda u: position[id(u)])
            for a_pos, user_a in enumerate(ordered):
                i = position[id(user_a)]
                for user_b in ordered[a_pos + 1:]:
                    j = position[id(user_b)]
                    if canonical_meeting(memberships[i], memberships[j]) != key:
                        continue
                    yield (
                        user_a.user_id,
                        user_b.user_id,
                        common_friends(user_a, user_b),
                    )

        job = MapReduceJob(
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            reducer_capacity=self.Q,
            strict_capacity=True,
        )
        return tuple(job.run(users).outputs)

    def test_default_path_matches_direct_call(self, users):
        assert run_common_friends(users, self.Q).pairs == self.direct_pairs(users)

    def test_engine_path_matches_direct_call(self, users):
        run = run_common_friends(users, self.Q, config=SERIAL)
        assert run.pairs == self.direct_pairs(users)
        assert run.engine is not None

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_backends_agree(self, users, backend):
        run = run_common_friends(users, self.Q, backend=backend, num_workers=2)
        assert dict(run.as_dict()) == dict(
            run_common_friends(users, self.Q).as_dict()
        )

    def test_planned_mode_same_output_dict(self, users):
        default = run_common_friends(users, self.Q)
        planned = run_common_friends(users, self.Q, method="planned")
        assert planned.as_dict() == default.as_dict()
        assert planned.engine is not None


class TestTensorProduct:
    Q = 30

    @pytest.fixture(scope="class")
    def vectors(self):
        u = generate_block_vector("u", 6, self.Q, seed=34)
        v = generate_block_vector("v", 5, self.Q, seed=35)
        return u, v

    def direct_entries(self, u, v):
        """The seed repo's closure path with per-pair canonical meetings."""
        instance = X2YInstance(
            [b.size for b in u.blocks], [b.size for b in v.blocks], self.Q
        )
        schema = solve_x2y(instance, "auto")
        x_members, y_members = x2y_memberships(schema)

        def map_fn(record):
            side, block = record
            members = x_members if side == "u" else y_members
            for r in members[block.block_id]:
                yield r, (side, block)

        def reduce_fn(key, values):
            u_blocks = [b for side, b in values if side == "u"]
            v_blocks = [b for side, b in values if side == "v"]
            for ub in u_blocks:
                for vb in v_blocks:
                    if (
                        canonical_meeting(
                            x_members[ub.block_id], y_members[vb.block_id]
                        )
                        != key
                    ):
                        continue
                    for a, u_val in enumerate(ub.values):
                        for b, v_val in enumerate(vb.values):
                            yield (ub.offset + a, vb.offset + b, u_val * v_val)

        job = MapReduceJob(
            map_fn=map_fn,
            reduce_fn=reduce_fn,
            size_of=lambda value: value[1].size,
            reducer_capacity=self.Q,
            strict_capacity=True,
        )
        records = [("u", b) for b in u.blocks] + [("v", b) for b in v.blocks]
        return tuple(job.run(records).outputs)

    def test_default_path_matches_direct_call(self, vectors):
        u, v = vectors
        run = distributed_outer_product(u, v, self.Q)
        assert run.entries == self.direct_entries(u, v)

    def test_engine_path_same_matrix(self, vectors):
        u, v = vectors
        default = distributed_outer_product(u, v, self.Q)
        engine = distributed_outer_product(u, v, self.Q, config=SERIAL)
        assert engine.dense() == default.dense()
        assert engine.engine is not None

    def test_planned_mode_same_matrix(self, vectors):
        u, v = vectors
        default = distributed_outer_product(u, v, self.Q)
        planned = distributed_outer_product(u, v, self.Q, method="planned")
        assert planned.dense() == default.dense()
        assert planned.plan is not None and planned.plan.mode == "planned"


class TestThreewaySimilarity:
    Q, THRESHOLD = 36, 0.05

    @pytest.fixture(scope="class")
    def documents(self):
        return generate_documents(10, self.Q // 3, seed=36)

    def test_matches_ground_truth_and_direct_schema(self, documents):
        run = run_threeway_similarity(documents, self.Q, self.THRESHOLD)
        assert run.triple_set() == all_triples_above(documents, self.THRESHOLD)
        direct = multiway_bin_combining(
            MultiwayInstance([d.size for d in documents], self.Q, 3)
        )
        assert run.schema.reducers == direct.reducers
        assert run.plan is not None and run.plan.spec.kind == "multiway"
