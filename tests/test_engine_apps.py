"""End-to-end app runs through the engine's parallel backends."""

from __future__ import annotations

import pytest

from repro.apps.similarity_join import run_similarity_join
from repro.apps.skew_join import hash_join, naive_join, schema_skew_join
from repro.workloads.documents import all_pairs_above, generate_documents
from repro.workloads.relations import generate_join_workload

BACKENDS = ["serial", "threads", "processes"]


class TestSimilarityJoinBackends:
    @pytest.fixture(scope="class")
    def documents(self):
        return generate_documents(30, 60, seed=21)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_pairs_on_every_backend(self, documents, backend):
        run = run_similarity_join(
            documents, 60, 0.15, backend=backend, num_workers=2
        )
        assert run.pair_set() == all_pairs_above(documents, 0.15)
        assert run.metrics.max_reducer_load <= 60
        assert run.engine.backend == backend

    def test_backends_agree_pairwise(self, documents):
        runs = [
            run_similarity_join(documents, 60, 0.15, backend=b, num_workers=2)
            for b in BACKENDS
        ]
        assert runs[0].pairs == runs[1].pairs == runs[2].pairs
        assert runs[0].metrics == runs[1].metrics == runs[2].metrics

    def test_engine_metrics_track_phases(self, documents):
        run = run_similarity_join(documents, 60, 0.15, backend="threads")
        timings = run.engine.timings
        assert timings.map_seconds >= 0.0
        assert timings.reduce_seconds >= 0.0
        assert timings.total_seconds == pytest.approx(
            timings.map_seconds
            + timings.shuffle_seconds
            + timings.reduce_seconds
        )
        assert run.engine.bytes_moved == run.metrics.communication_cost


class TestSkewJoinBackends:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_join_workload(260, 260, 9, 1.4, size_jitter=1, seed=2)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_join_on_every_backend(self, workload, backend):
        x, y = workload
        truth = naive_join(x, y)
        run = schema_skew_join(x, y, 75, backend=backend, num_workers=2)
        assert run.triple_set() == truth
        assert run.metrics.max_reducer_load <= 75
        assert run.heavy_keys  # the workload is skewed enough to matter
        assert run.engine.backend == backend

    def test_schema_join_beats_hash_join_on_load(self, workload):
        x, y = workload
        baseline = hash_join(x, y, 75)
        run = schema_skew_join(x, y, 75, backend="threads")
        assert baseline.metrics.max_reducer_load > 75
        assert run.metrics.max_reducer_load <= 75

    def test_per_heavy_key_schemas_are_valid(self, workload):
        x, y = workload
        run = schema_skew_join(x, y, 75, backend="serial")
        assert run.schemas
        for schema in run.schemas.values():
            assert schema.verify().valid
