"""Public-API contract tests: exports exist, are documented, and importable."""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.core.a2a",
    "repro.core.x2y",
    "repro.core.multiway",
    "repro.binpack",
    "repro.covering",
    "repro.mapreduce",
    "repro.engine",
    "repro.obs",
    "repro.planner",
    "repro.service",
    "repro.workloads",
    "repro.apps",
    "repro.analysis",
    "repro.io",
    "repro.cli",
    "repro.utils",
    "repro.exceptions",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize(
    "module_name",
    [m for m in PUBLIC_MODULES if m not in ("repro.cli", "repro.exceptions", "repro.utils")],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_are_documented(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    names = exported if exported is not None else [
        n for n in dir(module) if not n.startswith("_")
    ]
    undocumented = []
    for name in names:
        obj = getattr(module, name, None)
        # Only classes and functions carry docstrings; type aliases and
        # registry dicts are documented at the module level.
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_star_import_is_clean():
    namespace: dict[str, object] = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate API check
    assert "solve_a2a" in namespace
    assert "A2AInstance" in namespace
