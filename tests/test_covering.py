"""Unit tests for covering designs and the grouped-covering A2A scheme."""

from __future__ import annotations

import pytest

from repro.core.a2a import equal_sized_grouping, grouped_covering
from repro.core.bounds import a2a_equal_sized_reducer_bound
from repro.core.instance import A2AInstance
from repro.covering.designs import (
    greedy_pair_cover,
    pair_cover,
    schonheim_lower_bound,
    steiner_triple_system,
    validate_pair_cover,
)
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


class TestSchonheimBound:
    def test_block_covers_all(self):
        assert schonheim_lower_bound(5, 5) == 1
        assert schonheim_lower_bound(5, 7) == 1

    def test_pairs_case(self):
        # s=2: bound equals C(t,2)... ceil(t/2 * (t-1)) = C(t,2) for even t.
        assert schonheim_lower_bound(6, 2) == 15

    def test_steiner_case_exact(self):
        # t=9, s=3: bound is 12, met by the affine plane AG(2,3).
        assert schonheim_lower_bound(9, 3) == 12

    def test_rejects_bad_block_size(self):
        with pytest.raises(InvalidInstanceError):
            schonheim_lower_bound(5, 1)


class TestSteinerTripleSystem:
    @pytest.mark.parametrize("t", [3, 9, 15, 21, 27, 33, 39])
    def test_valid_and_exactly_minimal(self, t):
        triples = steiner_triple_system(t)
        validate_pair_cover(t, triples, s=3)
        # A Steiner system has exactly t(t-1)/6 triples: every pair once.
        assert len(triples) == t * (t - 1) // 6
        assert len(triples) == schonheim_lower_bound(t, 3)

    def test_every_pair_exactly_once(self):
        triples = steiner_triple_system(9)
        seen = {}
        for block in triples:
            ordered = sorted(block)
            for a_pos, a in enumerate(ordered):
                for b in ordered[a_pos + 1:]:
                    seen[(a, b)] = seen.get((a, b), 0) + 1
        assert set(seen.values()) == {1}

    def test_rejects_unsupported_t(self):
        with pytest.raises(InvalidInstanceError):
            steiner_triple_system(7)  # 7 = 6n+1 not implemented exactly
        with pytest.raises(InvalidInstanceError):
            steiner_triple_system(8)


class TestGreedyPairCover:
    @pytest.mark.parametrize("t,s", [(4, 2), (7, 3), (10, 4), (13, 5), (20, 6)])
    def test_valid_cover(self, t, s):
        blocks = greedy_pair_cover(t, s)
        validate_pair_cover(t, blocks, s=s)

    def test_respects_schonheim(self):
        for t, s in [(8, 3), (12, 4), (16, 4)]:
            assert len(greedy_pair_cover(t, s)) >= schonheim_lower_bound(t, s)

    def test_single_point(self):
        assert greedy_pair_cover(1, 3) == [(0,)]

    def test_block_covers_everything(self):
        assert greedy_pair_cover(4, 10) == [(0, 1, 2, 3)]

    def test_within_log_factor_of_bound(self):
        t, s = 20, 4
        blocks = greedy_pair_cover(t, s)
        assert len(blocks) <= 4 * schonheim_lower_bound(t, s)

    def test_rejects_bad_args(self):
        with pytest.raises(InvalidInstanceError):
            greedy_pair_cover(0, 3)
        with pytest.raises(InvalidInstanceError):
            greedy_pair_cover(5, 1)


class TestPairCoverFrontDoor:
    def test_uses_steiner_when_applicable(self):
        blocks = pair_cover(15, 3)
        assert len(blocks) == 15 * 14 // 6  # exact STS size

    def test_falls_back_to_greedy(self):
        blocks = pair_cover(10, 3)
        validate_pair_cover(10, blocks, s=3)


class TestGroupedCovering:
    def test_valid_schema(self):
        instance = A2AInstance.equal_sized(90, 1, 6)
        schema = grouped_covering(instance)
        assert schema.verify().valid

    def test_beats_plain_grouping_when_steiner_applies(self):
        # k=6, m=90: plain grouping uses C(30,2)=435; covering with g=2
        # gives t=45 ≡ 3 (mod 6) -> STS of 330 blocks.
        instance = A2AInstance.equal_sized(90, 1, 6)
        plain = equal_sized_grouping(instance)
        covered = grouped_covering(instance)
        assert covered.num_reducers < plain.num_reducers

    def test_never_below_lower_bound(self):
        instance = A2AInstance.equal_sized(60, 2, 12)
        schema = grouped_covering(instance)
        k = 12 // 2
        assert schema.num_reducers >= a2a_equal_sized_reducer_bound(60, k)

    def test_single_reducer_cases(self):
        assert grouped_covering(A2AInstance.equal_sized(4, 1, 8)).num_reducers == 1
        assert grouped_covering(A2AInstance.equal_sized(1, 3, 3)).num_reducers == 1

    def test_infeasible_k1(self):
        with pytest.raises(InfeasibleInstanceError):
            grouped_covering(A2AInstance.equal_sized(3, 4, 7))

    def test_rejects_mixed_sizes(self, small_a2a):
        with pytest.raises(InvalidInstanceError):
            grouped_covering(small_a2a)

    def test_loads_bounded(self):
        instance = A2AInstance.equal_sized(50, 3, 21)  # k=7, odd
        schema = grouped_covering(instance)
        assert schema.verify().valid
        assert schema.max_load <= instance.q

    @pytest.mark.parametrize("m,w,q", [(24, 1, 4), (36, 1, 6), (40, 2, 12), (55, 1, 9)])
    def test_valid_across_shapes(self, m, w, q):
        schema = grouped_covering(A2AInstance.equal_sized(m, w, q))
        assert schema.verify().valid
