"""Self-lint: the shipped tree is clean, and seeded regressions are caught.

The acceptance bar for the lint subsystem: ``repro lint`` over the
installed package exits clean against the *empty* committed baseline, every
inline suppression carries a reason, and deliberately re-introducing the
failure modes the rules exist for (an unseeded ``random.random()`` in the
engine, a closure-captured lock as a task function) is caught.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint import all_rules, lint_paths, load_module, run_rules

PACKAGE_DIR = Path(repro.__file__).resolve().parent
SRC_ROOT = PACKAGE_DIR.parent


def test_repo_tree_is_lint_clean():
    report = lint_paths([PACKAGE_DIR], all_rules(), root=SRC_ROOT)
    assert report.findings == [], "\n".join(
        f.render() for f in report.sorted_findings()
    )
    assert report.files_checked > 100


def test_committed_baseline_is_empty():
    baseline = Path(__file__).parent.parent / "lint-baseline.json"
    if not baseline.exists():
        return  # running from an installed copy without the repo root
    import json

    payload = json.loads(baseline.read_text())
    assert payload["findings"] == []


def test_every_suppression_in_tree_has_a_reason():
    for path in sorted(PACKAGE_DIR.rglob("*.py")):
        info = load_module(path, root=SRC_ROOT)
        for suppression in info.suppressions:
            assert suppression.reason, (
                f"{info.relpath}:{suppression.line}: suppression without a"
                " reason string"
            )


def _lint_mutated(tmp_path, original: Path, mutate, rel: str):
    """Copy a real module under its package path, apply ``mutate`` to the
    source, and lint the result with the module's true dotted name."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(mutate(original.read_text()))
    info = load_module(target, root=tmp_path)
    findings, _ = run_rules(info, all_rules())
    return findings


def test_unseeded_random_in_engine_is_caught(tmp_path):
    """Inserting ``random.random()`` into engine/engine.py trips the gate."""
    original = PACKAGE_DIR / "engine" / "engine.py"

    def mutate(source: str) -> str:
        tainted = source.replace(
            "def _run_map_task(",
            "def _jitter():\n"
            "    import random\n"
            "    return random.random()\n"
            "\n\n"
            "def _run_map_task(",
            1,
        )
        assert tainted != source, "engine.py no longer defines _run_map_task"
        return tainted

    findings = _lint_mutated(
        tmp_path, original, mutate, "repro/engine/engine.py"
    )
    determinism = [f for f in findings if f.rule == "determinism"]
    assert len(determinism) == 1
    assert "`random` module" in determinism[0].message


def test_closure_captured_lock_task_is_caught(tmp_path):
    """A task function closing over a lock trips pickle-safety."""
    source = (
        "import threading\n"
        "\n"
        "def dispatch(backend, items):\n"
        "    lock = threading.Lock()\n"
        "    seen = []\n"
        "    def task(x):\n"
        "        with lock:\n"
        "            seen.append(x)\n"
        "        return x\n"
        "    return backend.run_tasks_resilient(task, items)\n"
    )
    path = tmp_path / "repro" / "engine" / "tainted.py"
    path.parent.mkdir(parents=True)
    path.write_text(source)
    info = load_module(path, root=tmp_path)
    findings, _ = run_rules(info, all_rules())
    pickle = [f for f in findings if f.rule == "pickle-safety"]
    assert len(pickle) == 1
    assert "closes over unpicklable state (lock)" in pickle[0].message


def test_wall_clock_in_service_without_suppression_is_caught(tmp_path):
    """Removing a suppression resurfaces the wall-clock finding."""
    original = PACKAGE_DIR / "service" / "events.py"

    def mutate(source: str) -> str:
        lines = [
            line
            for line in source.splitlines(keepends=True)
            if "repro-lint: disable" not in line
        ]
        return "".join(lines)

    findings = _lint_mutated(
        tmp_path, original, mutate, "repro/service/events.py"
    )
    determinism = [f for f in findings if f.rule == "determinism"]
    assert len(determinism) == 1
    assert "time.time" in determinism[0].message
