"""The ``repro lint`` subcommand: exit codes, JSON output, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint(*argv):
    return main(["lint", *argv])


class TestExitCodes:
    def test_each_positive_fixture_fails(self, tmp_path):
        for fixture in sorted(FIXTURES.glob("pos_*.py")):
            code = lint(
                str(fixture), "--baseline", str(tmp_path / "empty.json")
            )
            assert code == 1, f"{fixture.name} should exit nonzero"

    def test_each_negative_fixture_passes(self, tmp_path):
        for fixture in sorted(FIXTURES.glob("neg_*.py")):
            code = lint(
                str(fixture), "--baseline", str(tmp_path / "empty.json")
            )
            assert code == 0, f"{fixture.name} should exit zero"

    def test_list_rules_exits_zero(self, capsys):
        assert lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in (
            "determinism",
            "pickle-safety",
            "exception-taxonomy",
            "lock-discipline",
        ):
            assert rule_id in out

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99, "findings": []}')
        fixture = FIXTURES / "neg_determinism.py"
        assert lint(str(fixture), "--baseline", str(baseline)) == 2
        assert "version" in capsys.readouterr().err


class TestJsonOut:
    def test_report_payload_shape(self, tmp_path):
        out = tmp_path / "findings.json"
        fixture = FIXTURES / "pos_determinism.py"
        code = lint(
            str(fixture),
            "--baseline",
            str(tmp_path / "empty.json"),
            "--json-out",
            str(out),
        )
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["files_checked"] == 1
        assert payload["grandfathered"] == []
        assert payload["new"]
        first = payload["new"][0]
        assert {"rule", "path", "line", "severity", "message", "hint"} <= set(
            first
        )

    def test_clean_run_still_writes_report(self, tmp_path):
        out = tmp_path / "findings.json"
        fixture = FIXTURES / "neg_determinism.py"
        code = lint(
            str(fixture),
            "--baseline",
            str(tmp_path / "empty.json"),
            "--json-out",
            str(out),
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["new"] == []


class TestBaselineWorkflow:
    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        fixture = FIXTURES / "pos_exception_taxonomy.py"
        assert (
            lint(str(fixture), "--baseline", str(baseline), "--write-baseline")
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        assert lint(str(fixture), "--baseline", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "3 grandfathered" in out

    def test_new_violation_not_absorbed_by_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fixture = FIXTURES / "pos_exception_taxonomy.py"
        lint(str(fixture), "--baseline", str(baseline), "--write-baseline")
        grown = tmp_path / "grown.py"
        grown.write_text(
            (fixture.read_text())
            + "\n\ndef extra():\n    raise RuntimeError('brand new')\n"
        )
        assert lint(str(grown), "--baseline", str(baseline)) == 1
