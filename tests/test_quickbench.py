"""Unit tests for the quick-bench harness behind ``repro bench``."""

from __future__ import annotations

from repro.engine.quickbench import (
    SCENARIOS,
    check_codec,
    check_regression,
    run_codec_bench,
    run_scenario,
    run_scenarios,
)


def rows_for(scenario_walls: dict[str, dict[str, float]]) -> list[dict[str, object]]:
    return [
        {"scenario": scenario, "backend": backend, "wall_s": wall}
        for scenario, walls in scenario_walls.items()
        for backend, wall in walls.items()
    ]


class TestCheckRegression:
    def test_passes_when_threads_close_to_serial(self):
        rows = rows_for({"a": {"serial": 0.20, "threads": 0.24}})
        assert check_regression(rows) == []

    def test_fails_on_gross_threads_slowdown(self):
        rows = rows_for({"a": {"serial": 0.20, "threads": 0.30}})
        failures = check_regression(rows)
        assert len(failures) == 1 and "a: threads" in failures[0]

    def test_sub_floor_scenarios_are_ignored(self):
        # 3ms vs 4ms is rounding noise, not a regression signal...
        rows = rows_for(
            {
                "noise": {"serial": 0.003, "threads": 0.004},
                "real": {"serial": 0.20, "threads": 0.21},
            }
        )
        assert check_regression(rows) == []

    def test_nothing_compared_is_a_failure(self):
        # ...but a run with *only* sub-floor or baseline-less scenarios
        # must fail rather than pass vacuously.
        for rows in (
            [],
            rows_for({"noise": {"serial": 0.003, "threads": 0.004}}),
            rows_for({"a": {"threads": 0.5}}),
            rows_for({"a": {"serial": 0.5}}),
        ):
            failures = check_regression(rows)
            assert failures and "compared nothing" in failures[0]


class TestCodecBench:
    def test_small_run_passes_its_own_gate(self):
        rows = run_codec_bench(
            items=200, repeat=1, block_items=(64,), include_transport=False
        )
        assert check_codec(rows) == []
        kinds = {r["kind"] for r in rows if r["scenario"] == "codec"}
        assert kinds == {"int", "str", "bytes", "tuple"}

    def test_gate_catches_failed_roundtrip(self):
        rows = run_codec_bench(
            items=50, repeat=1, block_items=(16,), include_transport=False
        )
        rows[0]["ok"] = False
        failures = check_codec(rows)
        assert failures and "round-trip failed" in failures[0]

    def test_gate_catches_wrong_codec_selection(self):
        rows = run_codec_bench(
            items=50, repeat=1, block_items=(16,), include_transport=False
        )
        for row in rows:
            if row["scenario"] == "codec" and row["kind"] == "int":
                row["codec"] = "p"
        assert any("selected codec" in f for f in check_codec(rows))


class TestScenarios:
    def test_scenario_registry_runs_everywhere_serial(self):
        for name in SCENARIOS:
            result, wall = run_scenario(name, "serial", scale=0.02)
            assert result.outputs, name
            assert wall >= 0

    def test_rows_carry_speedup_against_serial_baseline(self):
        rows = run_scenarios(
            scenarios=["shuffle_heavy"],
            backends=["threads", "serial"],  # serial is reordered first
            scale=0.02,
        )
        assert [r["backend"] for r in rows] == ["serial", "threads"]
        assert rows[0]["speedup_vs_serial"] == 1.0
        assert rows[1]["speedup_vs_serial"] != ""
