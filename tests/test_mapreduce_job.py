"""Unit tests for the simulated MapReduce job."""

from __future__ import annotations

import pytest

from repro.exceptions import CapacityExceededError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.types import default_size


def word_count_job(**kwargs):
    """Classic word count: the simplest end-to-end sanity workload."""
    return MapReduceJob(
        map_fn=lambda line: ((word, 1) for word in line.split()),
        reduce_fn=lambda word, counts: [(word, sum(counts))],
        size_of=lambda value: 1,
        **kwargs,
    )


class TestDefaultSize:
    def test_prefers_size_attribute(self):
        class Sized:
            size = 7

        assert default_size(Sized()) == 7

    def test_falls_back_to_len(self):
        assert default_size([1, 2, 3]) == 3

    def test_scalar_costs_one(self):
        assert default_size(42) == 1

    def test_empty_container_costs_one(self):
        assert default_size([]) == 1

    def test_ignores_nonpositive_size_attribute(self):
        class Weird:
            size = -5

        assert default_size(Weird()) == 1


class TestMapReduceJob:
    def test_word_count(self):
        job = word_count_job()
        result = job.run(["a b a", "b c"])
        assert dict(result.outputs) == {"a": 2, "b": 2, "c": 1}

    def test_metrics_counts(self):
        job = word_count_job()
        result = job.run(["a b a", "b c"])
        metrics = result.metrics
        assert metrics.map_input_records == 2
        assert metrics.map_output_pairs == 5
        assert metrics.communication_cost == 5
        assert metrics.num_reducers == 3
        assert metrics.output_records == 3

    def test_reducer_loads_per_key(self):
        job = word_count_job()
        metrics = job.run(["a b a"]).metrics
        assert metrics.reducer_loads == {"a": 2, "b": 1}
        assert metrics.max_reducer_load == 2

    def test_deterministic_key_order(self):
        job = MapReduceJob(
            map_fn=lambda x: [(x % 3, x)],
            reduce_fn=lambda k, vs: [(k, sorted(vs))],
            size_of=lambda v: 1,
        )
        first = job.run(range(10)).outputs
        second = job.run(range(10)).outputs
        assert first == second
        assert [k for k, _ in first] == [0, 1, 2]

    def test_strict_capacity_raises(self):
        job = word_count_job(reducer_capacity=1, strict_capacity=True)
        with pytest.raises(CapacityExceededError) as excinfo:
            job.run(["a a a"])
        assert excinfo.value.load == 3
        assert excinfo.value.capacity == 1

    def test_nonstrict_capacity_records_violations(self):
        job = word_count_job(reducer_capacity=1, strict_capacity=False)
        result = job.run(["a a a", "b"])
        assert result.metrics.capacity_violations == ("a",)
        # The reducer still ran.
        assert dict(result.outputs)["a"] == 3

    def test_no_capacity_no_violations(self):
        job = word_count_job()
        assert job.run(["a a a"]).metrics.capacity_violations == ()

    def test_empty_input(self):
        result = word_count_job().run([])
        assert result.outputs == []
        assert result.metrics.num_reducers == 0
        assert result.metrics.max_reducer_load == 0

    def test_custom_size_function_drives_comm_cost(self):
        job = MapReduceJob(
            map_fn=lambda x: [("k", x)],
            reduce_fn=lambda k, vs: [],
            size_of=lambda v: v * 10,
        )
        metrics = job.run([1, 2]).metrics
        assert metrics.communication_cost == 30
        assert metrics.reducer_loads["k"] == 30

    def test_mapper_can_emit_nothing(self):
        job = MapReduceJob(
            map_fn=lambda x: [],
            reduce_fn=lambda k, vs: [k],
        )
        result = job.run([1, 2, 3])
        assert result.outputs == []
        assert result.metrics.map_input_records == 3

    def test_metrics_as_row(self):
        row = word_count_job().run(["a b"]).metrics.as_row()
        assert row["reducers"] == 2
        assert row["comm_cost"] == 2


class TestJobMetricsDerived:
    def test_mean_and_skew(self):
        job = word_count_job()
        metrics = job.run(["a a a b"]).metrics
        assert metrics.mean_reducer_load == pytest.approx(2.0)
        assert metrics.load_skew == pytest.approx(1.5)

    def test_empty_job_zero_stats(self):
        metrics = word_count_job().run([]).metrics
        assert metrics.mean_reducer_load == 0.0
        assert metrics.load_skew == 0.0
