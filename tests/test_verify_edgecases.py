"""Edge-case tests for the verification layer (reporting behaviour)."""

from __future__ import annotations

import pytest

from repro.core.instance import A2AInstance, X2YInstance
from repro.core.schema import A2ASchema, X2YSchema
from repro.core.verify import _MAX_REPORTED
from repro.exceptions import InvalidInstanceError
from repro.mapreduce.cluster import SimulatedCluster


class TestReportTruncation:
    def test_uncovered_pairs_capped(self):
        # 40 inputs, empty schema: C(40,2) = 780 uncovered pairs, but the
        # report enumerates at most the cap (diagnostics, not a dump).
        instance = A2AInstance([1] * 40, 4)
        report = A2ASchema.from_lists(instance, []).verify()
        assert not report.valid
        assert len(report.uncovered_pairs) == _MAX_REPORTED

    def test_capacity_violations_capped(self):
        instance = A2AInstance([3] * 100, 4)
        overloaded = A2ASchema.from_lists(
            instance, [[i, (i + 1) % 100] for i in range(100)]
        )
        report = overloaded.verify()
        assert not report.valid
        assert len(report.capacity_violations) <= _MAX_REPORTED

    def test_x2y_uncovered_capped(self):
        instance = X2YInstance([1] * 20, [1] * 20, 4)
        report = X2YSchema.from_lists(instance, []).verify()
        assert not report.valid
        assert len(report.uncovered_pairs) == _MAX_REPORTED


class TestReportContents:
    def test_first_uncovered_pair_is_smallest(self):
        instance = A2AInstance([1, 1, 1], 4)
        report = A2ASchema.from_lists(instance, [[1, 2]]).verify()
        assert report.uncovered_pairs[0] == (0, 1)

    def test_capacity_violation_records_load(self):
        instance = A2AInstance([3, 3, 3], 6)
        report = A2ASchema.from_lists(instance, [[0, 1, 2]]).verify()
        assert report.capacity_violations == ((0, 9),)

    def test_valid_report_has_empty_diagnostics(self):
        instance = A2AInstance([1, 1], 4)
        report = A2ASchema.from_lists(instance, [[0, 1]]).verify()
        assert report.valid
        assert report.capacity_violations == ()
        assert report.uncovered_pairs == ()
        assert report.duplicate_assignments == ()

    def test_x2y_load_sums_both_sides_exactly(self):
        # 3 + 4 == 7 fits exactly; adding one more unit input breaks it.
        fits = X2YSchema.from_lists(X2YInstance([3], [4], 7), [((0,), (0,))])
        assert fits.verify().valid
        instance = X2YInstance([3, 1], [4], 7)
        overflows = X2YSchema.from_lists(instance, [((0, 1), (0,))])
        report = overflows.verify()
        assert not report.valid
        assert report.capacity_violations == ((0, 8),)


class TestClusterSpeeds:
    def test_cluster_passes_speeds_through(self):
        cluster = SimulatedCluster(2, 10, worker_speeds=(1.0, 4.0))
        result = cluster.schedule([8])
        assert result.makespan == pytest.approx(2.0)

    def test_cluster_rejects_mismatched_speeds(self):
        with pytest.raises(InvalidInstanceError, match="entries"):
            SimulatedCluster(3, 10, worker_speeds=(1.0, 2.0))
