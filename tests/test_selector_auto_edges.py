"""Edge cases of ``method="auto"`` dispatch in the selector facade.

Covers the corners the main selector tests skip: the uniform-sizes tie
between the two grouping schemes, the exact big-input boundary at
``q // 2`` on both problems, and the unknown-method error messages.
"""

from __future__ import annotations

import pytest

from repro.core.a2a import equal_sized_grouping, grouped_covering
from repro.core.instance import A2AInstance, X2YInstance
from repro.core.selector import solve_a2a, solve_x2y
from repro.core.x2y import best_split_grid, big_small_x2y


class TestA2AAutoEdges:
    def test_uniform_tie_prefers_first_candidate(self):
        # m=6, w=2, q=8: both grouping schemes use exactly 3 reducers, so
        # min() keeps the first candidate — the plain grouping scheme.
        instance = A2AInstance.equal_sized(m=6, w=2, q=8)
        plain = equal_sized_grouping(instance)
        covering = grouped_covering(instance)
        assert plain.num_reducers == covering.num_reducers == 3
        schema = solve_a2a(instance)
        assert schema.num_reducers == 3
        assert schema.algorithm == plain.algorithm

    def test_uniform_auto_never_worse_than_either_scheme(self):
        for m, w, q in [(6, 2, 8), (12, 1, 6), (20, 2, 8), (15, 3, 18)]:
            instance = A2AInstance.equal_sized(m=m, w=w, q=q)
            schema = solve_a2a(instance)
            assert schema.num_reducers == min(
                equal_sized_grouping(instance).num_reducers,
                grouped_covering(instance).num_reducers,
            )

    def test_input_exactly_half_q_is_not_big(self):
        # q//2 itself does not trigger the big/small scheme (strict >).
        schema = solve_a2a(A2AInstance([6, 2, 3, 4], q=12))
        assert schema.algorithm.startswith("bin_pairing")

    def test_input_just_above_half_q_routes_to_big_small(self):
        schema = solve_a2a(A2AInstance([7, 2, 3, 4], q=12))
        assert schema.algorithm == "big_small"
        assert schema.verify().valid

    def test_unknown_method_error_lists_choices(self):
        instance = A2AInstance([3, 4], q=10)
        with pytest.raises(ValueError) as error:
            solve_a2a(instance, method="magic")
        message = str(error.value)
        assert "unknown A2A method 'magic'" in message
        assert "'auto'" in message
        assert "equal_grouping" in message and "big_small" in message


class TestX2YAutoEdges:
    def test_input_exactly_half_q_is_not_big(self):
        # Largest input equals q//2 exactly: stays on the best-split grid.
        instance = X2YInstance([7, 2], [3, 4], q=14)
        schema = solve_x2y(instance)
        assert schema.algorithm.startswith("grid[")
        assert schema.verify().valid

    def test_big_input_takes_better_of_grid_and_big_small(self):
        # 9 > 17 // 2 = 8: auto must consider both general schemes and
        # keep whichever uses fewer reducers.
        instance = X2YInstance([9, 2, 3], [5, 3], q=17)
        schema = solve_x2y(instance)
        assert schema.verify().valid
        expected = min(
            big_small_x2y(instance).num_reducers,
            best_split_grid(instance).num_reducers,
        )
        assert schema.num_reducers == expected

    def test_big_input_on_y_side_also_routes(self):
        # The big-input check must look at the Y side too.
        instance = X2YInstance([5, 3], [9, 2, 3], q=17)
        schema = solve_x2y(instance)
        assert schema.verify().valid
        expected = min(
            big_small_x2y(instance).num_reducers,
            best_split_grid(instance).num_reducers,
        )
        assert schema.num_reducers == expected

    def test_unknown_method_error_lists_choices(self):
        instance = X2YInstance([3], [4], q=10)
        with pytest.raises(ValueError) as error:
            solve_x2y(instance, method="magic")
        message = str(error.value)
        assert "unknown X2Y method 'magic'" in message
        assert "'auto'" in message
        assert "equal_grid" in message and "best_split_grid" in message