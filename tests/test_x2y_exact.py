"""Unit tests for the exact X2Y solver."""

from __future__ import annotations

import pytest

from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.core.x2y.big import big_small_x2y
from repro.core.x2y.exact import solve_min_reducers_x2y
from repro.exceptions import InfeasibleInstanceError, SolverLimitError


class TestExactX2Y:
    def test_single_pair(self):
        schema = solve_min_reducers_x2y(X2YInstance([2], [3], 6))
        assert schema.num_reducers == 1

    def test_everything_in_one_reducer(self):
        schema = solve_min_reducers_x2y(X2YInstance([1, 1], [1, 1], 4))
        assert schema.num_reducers == 1
        assert schema.verify().valid

    def test_unit_grid_optimum(self):
        # 3x3 unit pairs with q=2: every reducer is one cross pair -> 9.
        schema = solve_min_reducers_x2y(X2YInstance([1] * 3, [1] * 3, 2))
        assert schema.num_reducers == 9

    def test_q4_grid_optimum(self):
        # q=4 units: a reducer holds 2 X + 2 Y -> covers 4 pairs; 4x4=16
        # pairs -> >= 4 reducers, and the 2x2 grid achieves exactly 4.
        schema = solve_min_reducers_x2y(X2YInstance([1] * 4, [1] * 4, 4))
        assert schema.verify().valid
        assert schema.num_reducers == 4

    def test_mixed_sizes_optimal(self):
        instance = X2YInstance([2, 3], [1, 4], 7)
        schema = solve_min_reducers_x2y(instance)
        assert schema.verify().valid
        assert schema.num_reducers >= x2y_reducer_lower_bound(instance)

    def test_beats_or_ties_heuristic(self):
        instance = X2YInstance([3, 2, 2], [3, 2], 7)
        exact = solve_min_reducers_x2y(instance)
        heuristic = big_small_x2y(instance)
        assert exact.num_reducers <= heuristic.num_reducers

    def test_node_limit(self):
        instance = X2YInstance([1] * 5, [1] * 5, 2)
        with pytest.raises(SolverLimitError):
            solve_min_reducers_x2y(instance, max_nodes=4)

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            solve_min_reducers_x2y(X2YInstance([5], [5], 8))
