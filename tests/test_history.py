"""Per-commit perf history: the NDJSON store and the trend gate."""

import json

import pytest

from repro.obs.history import (
    HistoryRecord,
    ProfileHistory,
    current_commit,
    hardware_class,
)


def make_record(
    wall,
    *,
    bench="perf-smoke",
    scenario="map_heavy/serial",
    hardware="2w",
    commit="c0",
    **overrides,
):
    return HistoryRecord(
        bench=bench,
        scenario=scenario,
        hardware_class=hardware,
        commit=commit,
        wall_seconds=wall,
        **overrides,
    )


class TestHistoryRecord:
    def test_key_and_round_trip(self):
        record = make_record(1.5, cpu_seconds=2.0, peak_rss_bytes=1 << 20)
        assert record.key() == ("perf-smoke", "map_heavy/serial", "2w")
        clone = HistoryRecord.from_dict(record.to_dict())
        assert clone == record

    def test_from_dict_ignores_unknown_keys(self):
        payload = make_record(1.0).to_dict()
        payload["future_field"] = "ignored"
        assert HistoryRecord.from_dict(payload).wall_seconds == 1.0

    def test_hardware_class_format(self):
        assert hardware_class(8) == "8w"
        # Default probes this machine: always "<positive int>w".
        label = hardware_class()
        assert label.endswith("w") and int(label[:-1]) >= 1

    def test_current_commit_env_override(self, monkeypatch):
        from repro.obs import history

        monkeypatch.setattr(history, "_COMMIT_CACHE", {})
        monkeypatch.setenv("REPRO_COMMIT", "abcdef0123456789")
        assert current_commit() == "abcdef012345"  # truncated to 12


class TestStore:
    def test_append_load_round_trip(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        history.append(make_record(1.0, commit="a"))
        history.extend([make_record(1.1, commit="b")])
        loaded = history.load()
        assert [r.commit for r in loaded] == ["a", "b"]
        assert len(history) == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert ProfileHistory(str(tmp_path / "absent.ndjson")).load() == []

    def test_truncated_final_line_warns_and_skips(self, tmp_path):
        path = tmp_path / "h.ndjson"
        history = ProfileHistory(str(path))
        history.append(make_record(1.0, commit="a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"bench": "perf-smoke", "scena')
        with pytest.warns(RuntimeWarning, match="1 record dropped"):
            loaded = history.load()
        assert [r.commit for r in loaded] == ["a"]

    def test_malformed_mid_file_raises_with_line_number(self, tmp_path):
        path = tmp_path / "h.ndjson"
        history = ProfileHistory(str(path))
        history.append(make_record(1.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        history.append(make_record(1.1))
        with pytest.raises(ValueError, match=":2:"):
            history.load()

    def test_series_groups_by_key(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        history.append(make_record(1.0))
        history.append(make_record(2.0, scenario="skew_join/threads"))
        history.append(make_record(1.2))
        grouped = history.series()
        assert len(grouped) == 2
        key = ("perf-smoke", "map_heavy/serial", "2w")
        assert [r.wall_seconds for r in grouped[key]] == [1.0, 1.2]


class TestTrendGate:
    def _seed(self, tmp_path, walls, **kwargs):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        for index, wall in enumerate(walls):
            history.append(make_record(wall, commit=f"c{index}", **kwargs))
        return history

    def test_fails_on_injected_2x_slowdown(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.0, 1.0, 1.0, 1.0, 2.0])
        failures, notes = history.check(hardware="2w")
        assert len(failures) == 1
        assert "map_heavy/serial" in failures[0]
        assert "c5" in failures[0]
        assert "rolling median" in failures[0]

    def test_passes_within_tolerance(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.0, 1.0, 1.0, 1.0, 1.05])
        failures, notes = history.check(hardware="2w")
        assert failures == []

    def test_median_is_robust_to_one_slow_outlier(self, tmp_path):
        # One slow historical run must not relax the gate the way a mean
        # would: the median of [1.0, 1.0, 9.0, 1.0, 1.0] is still 1.0,
        # so a 1.4x latest passes and a 2x latest fails regardless of
        # the 9.0 blip.
        history = self._seed(tmp_path, [1.0, 1.0, 9.0, 1.0, 1.0, 1.4])
        failures, _ = history.check(hardware="2w")
        assert failures == []
        history.append(make_record(2.0, commit="c6"))
        failures, _ = history.check(hardware="2w")
        assert len(failures) == 1

    def test_window_bounds_the_median(self, tmp_path):
        # Only the newest `window` prior records feed the median: the
        # old fast runs age out, so a new plateau is accepted.
        walls = [0.1] * 5 + [1.0] * 5 + [1.2]
        history = self._seed(tmp_path, walls)
        failures, _ = history.check(hardware="2w", window=5)
        assert failures == []

    def test_short_series_skipped_with_note(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.0])
        failures, notes = history.check(hardware="2w")
        assert failures == []
        assert any("trend gate not yet active" in note for note in notes)

    def test_other_hardware_skipped_with_note(self, tmp_path):
        history = self._seed(tmp_path, [1.0] * 5 + [9.0], hardware="64w")
        failures, notes = history.check(hardware="2w")
        assert failures == []
        assert any("other hardware" in note for note in notes)

    def test_sub_min_wall_skipped_as_noise(self, tmp_path):
        history = self._seed(tmp_path, [0.001] * 5 + [0.9])
        failures, notes = history.check(hardware="2w")
        assert failures == []
        assert any("noise" in note for note in notes)

    def test_empty_history_is_a_failure(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "absent.ndjson"))
        failures, _ = history.check(hardware="2w")
        assert len(failures) == 1
        assert "compared nothing" in failures[0]

    def test_bench_filter(self, tmp_path):
        history = self._seed(tmp_path, [1.0] * 5 + [9.0])
        failures, _ = history.check(hardware="2w", bench="other-bench")
        assert "compared nothing" in failures[0]
        failures, _ = history.check(hardware="2w", bench="perf-smoke")
        assert len(failures) == 1


class TestReportCompareGc:
    def test_report_rows(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        for index, wall in enumerate([1.0, 1.0, 2.0]):
            history.append(make_record(wall, commit=f"c{index}"))
        (row,) = history.report()
        assert row["runs"] == 3 and row["commit"] == "c2"
        assert row["median_s"] == 1.0 and row["trend"] == 2.0

    def test_compare_ratio(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        history.append(make_record(2.0, commit="base"))
        history.append(make_record(1.0, commit="cand"))
        history.append(
            make_record(1.0, commit="base", scenario="only-base")
        )
        rows = history.compare("base", "cand")
        assert len(rows) == 1  # series missing a commit are dropped
        assert rows[0]["ratio"] == 0.5

    def test_gc_drops_oldest_per_series(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        for index in range(6):
            history.append(make_record(float(index), commit=f"c{index}"))
        history.append(make_record(9.0, scenario="other"))
        kept, dropped = history.gc(keep=2)
        assert (kept, dropped) == (3, 4)
        walls = [r.wall_seconds for r in history.load()]
        assert walls == [4.0, 5.0, 9.0]

    def test_gc_rejects_nonpositive_keep(self, tmp_path):
        history = ProfileHistory(str(tmp_path / "h.ndjson"))
        with pytest.raises(ValueError):
            history.gc(keep=0)


class TestHistoryCli:
    def test_record_report_check_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "h.ndjson")
        for index in range(4):
            assert (
                main(
                    [
                        "history",
                        "record",
                        "--file",
                        path,
                        "--bench",
                        "cli",
                        "--scenario",
                        "s1",
                        "--wall",
                        "1.0",
                        "--commit",
                        f"c{index}",
                        "--hardware",
                        hardware_class(),
                    ]
                )
                == 0
            )
        capsys.readouterr()
        assert main(["history", "report", "--file", path, "--json"]) == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert row["runs"] == 4 and row["bench"] == "cli"
        assert main(["history", "check", "--file", path]) == 0

    def test_check_exits_1_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "h.ndjson")
        history = ProfileHistory(path)
        for index, wall in enumerate([1.0, 1.0, 1.0, 1.0, 1.0, 2.5]):
            history.append(
                make_record(
                    wall, commit=f"c{index}", hardware=hardware_class()
                )
            )
        assert main(["history", "check", "--file", path]) == 1
        assert "PERF TREND REGRESSION" in capsys.readouterr().err

    def test_record_from_bench_rows(self, tmp_path, capsys):
        from repro.cli import main

        rows_path = tmp_path / "bench.json"
        rows_path.write_text(
            json.dumps(
                {
                    "workers": 2,
                    "rows": [
                        {
                            "scenario": "map_heavy",
                            "backend": "serial",
                            "wall_s": 0.5,
                        },
                        {"scenario": "no_wall", "backend": "serial"},
                    ],
                }
            )
        )
        path = str(tmp_path / "h.ndjson")
        assert (
            main(
                [
                    "history",
                    "record",
                    "--file",
                    path,
                    "--from-bench",
                    str(rows_path),
                    "--commit",
                    "abc",
                ]
            )
            == 0
        )
        (record,) = ProfileHistory(path).load()
        assert record.scenario == "map_heavy/serial"
        assert record.hardware_class == "2w"
        assert record.commit == "abc"

    def test_record_from_profile_phases(self, tmp_path):
        from repro.cli import main

        profile_path = tmp_path / "profile.json"
        profile_path.write_text(
            json.dumps(
                {
                    "phases": {
                        "map": {
                            "wall_seconds": 0.4,
                            "cpu_seconds": 0.3,
                            "peak_rss_bytes": 2048,
                        },
                        "empty": {"wall_seconds": 0.0},
                    }
                }
            )
        )
        path = str(tmp_path / "h.ndjson")
        assert (
            main(
                [
                    "history",
                    "record",
                    "--file",
                    path,
                    "--from-profile",
                    str(profile_path),
                    "--commit",
                    "abc",
                ]
            )
            == 0
        )
        (record,) = ProfileHistory(path).load()
        assert record.bench == "profile" and record.scenario == "map"
        assert record.peak_rss_bytes == 2048

    def test_record_nothing_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "history",
                    "record",
                    "--file",
                    str(tmp_path / "h.ndjson"),
                ]
            )
            == 1
        )
        assert "nothing to record" in capsys.readouterr().err

    def test_gc_cli(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "h.ndjson")
        history = ProfileHistory(path)
        for index in range(5):
            history.append(make_record(1.0, commit=f"c{index}"))
        assert main(["history", "gc", "--file", path, "--keep", "2"]) == 0
        assert "kept 2, dropped 3" in capsys.readouterr().out
        assert len(history) == 2
