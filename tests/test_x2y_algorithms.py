"""Unit tests for the X2Y schemes: grids, equal-sized, big/small, greedy."""

from __future__ import annotations

import pytest

from repro.binpack import best_fit_decreasing
from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.core.x2y.big import big_small_x2y, split_big_small_x2y
from repro.core.x2y.equal import best_group_shape, equal_sized_grid
from repro.core.x2y.greedy import greedy_cover_x2y
from repro.core.x2y.grid import best_split_grid, grid_with_split, half_split_grid
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError


class TestGridWithSplit:
    def test_valid_schema(self, small_x2y):
        schema = grid_with_split(small_x2y, 7)
        assert schema.verify().valid

    def test_rejects_split_below_max_x(self, small_x2y):
        with pytest.raises(InvalidInstanceError, match="largest X"):
            grid_with_split(small_x2y, 5)  # max x = 6

    def test_rejects_split_starving_y(self, small_x2y):
        with pytest.raises(InvalidInstanceError, match="largest Y"):
            grid_with_split(small_x2y, 10)  # leaves 4 < 7 for Y

    def test_reducer_count_is_product(self):
        instance = X2YInstance([1] * 4, [1] * 6, 4)
        schema = grid_with_split(instance, 2)
        # X bins of cap 2 -> 2 bins; Y bins of cap 2 -> 3 bins -> 6 reducers.
        assert schema.num_reducers == 6

    def test_custom_packer(self, small_x2y):
        schema = grid_with_split(small_x2y, 7, packer=best_fit_decreasing)
        assert schema.verify().valid


class TestHalfSplitGrid:
    def test_valid_when_everything_small(self):
        instance = X2YInstance([3, 4], [5, 2], 12)
        schema = half_split_grid(instance)
        assert schema.verify().valid

    def test_fails_on_big_inputs(self, big_x2y):
        with pytest.raises(InvalidInstanceError):
            half_split_grid(big_x2y)


class TestBestSplitGrid:
    def test_valid_on_mixed(self, small_x2y):
        schema = best_split_grid(small_x2y)
        assert schema.verify().valid

    def test_never_worse_than_half_split(self):
        instance = X2YInstance([3, 3, 3, 3], [1, 1, 1, 1, 1, 1], 8)
        best = best_split_grid(instance)
        half = half_split_grid(instance)
        assert best.num_reducers <= half.num_reducers

    def test_handles_one_sided_bigs(self):
        # Big X inputs force an asymmetric split; best_split still works.
        instance = X2YInstance([9, 9], [1, 1, 1], 12)
        schema = best_split_grid(instance)
        assert schema.verify().valid

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            best_split_grid(X2YInstance([8], [8], 12))

    def test_within_factor_of_lower_bound(self):
        instance = X2YInstance([2, 3, 4] * 5, [1, 2, 5] * 5, 20)
        schema = best_split_grid(instance)
        bound = x2y_reducer_lower_bound(instance)
        assert schema.num_reducers <= 6 * bound + 3


class TestBestGroupShape:
    def test_balanced_units(self):
        assert best_group_shape(1, 1, 10, 100, 100) == (5, 5)

    def test_respects_populations(self):
        a, b = best_group_shape(1, 1, 10, 2, 100)
        assert a <= 2

    def test_asymmetric_sizes(self):
        a, b = best_group_shape(3, 1, 12, 100, 100)
        assert a * 3 + b * 1 <= 12
        assert a * b >= 8  # e.g. (2,6) or (3,3): best is (2,6)=12? check >= 8

    def test_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            best_group_shape(6, 7, 12, 5, 5)


class TestEqualSizedGrid:
    def test_valid(self):
        instance = X2YInstance.equal_sized(10, 2, 12, 3, 12)
        schema = equal_sized_grid(instance)
        assert schema.verify().valid

    def test_rejects_mixed(self, small_x2y):
        with pytest.raises(InvalidInstanceError):
            equal_sized_grid(small_x2y)

    def test_count_near_bound(self):
        instance = X2YInstance.equal_sized(20, 1, 20, 1, 10)
        schema = equal_sized_grid(instance)
        bound = x2y_reducer_lower_bound(instance)
        assert schema.verify().valid
        assert schema.num_reducers <= 3 * bound + 2


class TestSplitBigSmallX2Y:
    def test_partition(self, big_x2y):
        big_x, small_x, big_y, small_y = split_big_small_x2y(big_x2y)
        assert big_x == [0]  # 9 > 8 = 17//2
        assert big_y == []   # 8 <= 8
        assert len(small_x) == 2
        assert len(small_y) == 3


class TestBigSmallX2Y:
    def test_valid_with_one_sided_bigs(self):
        instance = X2YInstance([9, 2], [8, 3], 17)
        schema = big_small_x2y(instance)
        assert schema.verify().valid

    def test_valid_no_bigs(self):
        instance = X2YInstance([3, 4], [5, 2], 12)
        schema = big_small_x2y(instance)
        assert schema.verify().valid

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            big_small_x2y(X2YInstance([9], [9], 17))

    def test_loads_bounded(self, big_x2y):
        schema = big_small_x2y(big_x2y)
        assert schema.max_load <= big_x2y.q

    def test_only_bigs(self):
        instance = X2YInstance([7, 7], [5, 5], 12)
        schema = big_small_x2y(instance)
        assert schema.verify().valid
        # Every reducer is a single cross pair.
        assert schema.num_reducers == 4


class TestGreedyX2Y:
    def test_valid(self, small_x2y):
        schema = greedy_cover_x2y(small_x2y)
        assert schema.verify().valid

    def test_valid_with_bigs(self, big_x2y):
        schema = greedy_cover_x2y(big_x2y)
        assert schema.verify().valid

    def test_single_pair(self):
        schema = greedy_cover_x2y(X2YInstance([2], [3], 6))
        assert schema.num_reducers == 1

    def test_cap(self):
        instance = X2YInstance([3] * 5, [3] * 5, 6)
        schema = greedy_cover_x2y(instance, max_reducers=3)
        assert schema.num_reducers == 3
        assert not schema.verify().valid

    def test_raises_on_infeasible(self):
        with pytest.raises(InfeasibleInstanceError):
            greedy_cover_x2y(X2YInstance([5], [8], 12))
