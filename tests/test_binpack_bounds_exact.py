"""Unit tests for bin-packing lower bounds and the exact solver."""

from __future__ import annotations

import pytest

from repro.binpack import (
    best_lower_bound,
    first_fit_decreasing,
    l1_bound,
    l2_bound,
    large_item_bound,
    pack_exact,
)
from repro.exceptions import SolverLimitError


class TestL1Bound:
    def test_exact_division(self):
        assert l1_bound([5, 5, 5, 5], 10) == 2

    def test_rounds_up(self):
        assert l1_bound([5, 5, 1], 10) == 2

    def test_single_item(self):
        assert l1_bound([3], 10) == 1


class TestLargeItemBound:
    def test_counts_items_above_half(self):
        assert large_item_bound([6, 6, 6, 2], 10) == 3

    def test_half_exactly_not_large(self):
        assert large_item_bound([5, 5], 10) == 0


class TestL2Bound:
    def test_dominates_l1(self):
        sizes = [6, 6, 6, 2, 2, 2]
        assert l2_bound(sizes, 10) >= l1_bound(sizes, 10)

    def test_detects_pairwise_incompatible(self):
        # Three items of 6: L1 says 2, L2 must say 3.
        assert l2_bound([6, 6, 6], 10) == 3

    def test_small_items_force_extra_bins(self):
        # Medium 6s leave residual 4 each; 3 smalls of 5 > residual -> extra.
        sizes = [6, 6, 5, 5, 5]
        assert l2_bound(sizes, 10) >= 3


class TestBestLowerBound:
    def test_max_of_all(self):
        sizes = [6, 6, 6]
        assert best_lower_bound(sizes, 10) == 3

    def test_never_exceeds_ffd(self):
        sizes = [7, 3, 6, 4, 5, 5, 2, 9, 1, 8]
        assert best_lower_bound(sizes, 10) <= first_fit_decreasing(sizes, 10).num_bins


class TestPackExact:
    def test_matches_known_optimum(self):
        # Perfect pairs: optimal is 3 bins.
        result = pack_exact([7, 3, 6, 4, 5, 5], 10)
        assert result.num_bins == 3

    def test_beats_ffd_on_ffd_adversary(self):
        # Classic: FFD uses 3 bins, optimum is 2? Construct a case where
        # FFD is suboptimal: capacity 12, sizes 6,5,4,4,3,2 -> opt 2 bins.
        sizes = [6, 5, 4, 4, 3, 2]
        exact = pack_exact(sizes, 12)
        assert exact.num_bins == 2
        assert exact.num_bins <= first_fit_decreasing(sizes, 12).num_bins

    def test_exact_is_valid_packing(self):
        result = pack_exact([9, 8, 2, 7, 3, 1, 6, 4], 10)
        result.validate()

    def test_single_item(self):
        assert pack_exact([4], 10).num_bins == 1

    def test_all_singletons(self):
        assert pack_exact([9, 9, 9], 10).num_bins == 3

    def test_node_limit_raises(self):
        # FFD is suboptimal here so the search actually runs; a ludicrously
        # small node budget must trip the limit.
        sizes = [6, 5, 4, 4, 3, 2]
        with pytest.raises(SolverLimitError):
            pack_exact(sizes, 12, max_nodes=1)

    def test_exact_never_below_lower_bound(self):
        sizes = [5, 5, 4, 4, 3, 3, 2, 2]
        result = pack_exact(sizes, 9)
        assert result.num_bins >= best_lower_bound(sizes, 9)
