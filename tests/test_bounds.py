"""Unit tests for the reducer/communication lower bounds."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    a2a_communication_lower_bound,
    a2a_equal_sized_reducer_bound,
    a2a_pair_cover_bound,
    a2a_reducer_lower_bound,
    a2a_replication_lower_bounds,
    a2a_volume_bound,
    x2y_communication_lower_bound,
    x2y_pair_cover_bound,
    x2y_reducer_lower_bound,
    x2y_replication_lower_bounds,
    x2y_volume_bound,
)
from repro.core.instance import A2AInstance, X2YInstance


class TestA2ABounds:
    def test_volume_bound(self):
        assert a2a_volume_bound(A2AInstance([5, 5, 5], 10)) == 2

    def test_pair_cover_equal_sizes(self):
        # m=4, each reducer fits t=2 -> C(4,2)/C(2,2) = 6 reducers.
        instance = A2AInstance([5, 5, 5, 5], 10)
        assert a2a_pair_cover_bound(instance) == 6

    def test_pair_cover_uses_smallest_sizes(self):
        # t computed from smallest sizes: 1+2+3 <= 6 -> t=3, C(5,2)/C(3,2)=4.
        instance = A2AInstance([1, 2, 3, 4, 5], 6)
        assert a2a_pair_cover_bound(instance) == 4

    def test_single_input_bound_is_one(self):
        assert a2a_pair_cover_bound(A2AInstance([4], 5)) == 1
        assert a2a_reducer_lower_bound(A2AInstance([4], 5)) == 1

    def test_replication_bounds_formula(self):
        # W=12, input of size 4: ceil((12-4)/(10-4)) = 2.
        instance = A2AInstance([4, 4, 4], 10)
        assert a2a_replication_lower_bounds(instance) == (2, 2, 2)

    def test_replication_single_input(self):
        assert a2a_replication_lower_bounds(A2AInstance([4], 5)) == (1,)

    def test_communication_bound_weights_by_size(self):
        instance = A2AInstance([4, 4, 4], 10)
        assert a2a_communication_lower_bound(instance) == 3 * 4 * 2

    def test_reducer_bound_at_least_volume_and_pairs(self):
        instance = A2AInstance([5, 5, 5, 5], 10)
        assert a2a_reducer_lower_bound(instance) >= a2a_volume_bound(instance)
        assert a2a_reducer_lower_bound(instance) >= a2a_pair_cover_bound(instance)

    def test_equal_sized_closed_form(self):
        # m=20, k=4: ceil(20*19 / (4*3)) = ceil(380/12) = 32.
        assert a2a_equal_sized_reducer_bound(20, 4) == 32

    def test_equal_sized_degenerate(self):
        assert a2a_equal_sized_reducer_bound(1, 4) == 1
        assert a2a_equal_sized_reducer_bound(0, 4) == 0

    def test_equal_sized_k_below_two_sentinel(self):
        assert a2a_equal_sized_reducer_bound(4, 1) > 6  # > C(4,2)

    def test_infeasible_instance_gets_sentinel_pair_bound(self):
        # No two inputs fit together: bound exceeds the pair count.
        instance = A2AInstance([7, 7, 7], 12)
        assert a2a_pair_cover_bound(instance) > instance.num_pairs


class TestX2YBounds:
    def test_volume_bound(self):
        assert x2y_volume_bound(X2YInstance([5, 5], [5, 5], 10)) == 2

    def test_pair_cover_equal_case(self):
        # Each reducer fits 1 X (5) + 1 Y (5): 4 pairs -> 4 reducers.
        instance = X2YInstance([5, 5], [5, 5], 10)
        assert x2y_pair_cover_bound(instance) == 4

    def test_pair_cover_prefers_balanced_split(self):
        # q=12, unit sizes: best a*b = 6*6 = 36 -> m*n/36.
        instance = X2YInstance([1] * 10, [1] * 10, 12)
        assert x2y_pair_cover_bound(instance) == -(-100 // 36)

    def test_replication_bounds(self):
        # X of size 2 must meet W_Y=6 with residual 10-2=8 -> 1 copy;
        # X of size 9 has residual 1 -> 6 copies.
        instance = X2YInstance([2, 9], [3, 3], 10)
        x_reps, y_reps = x2y_replication_lower_bounds(instance)
        assert x_reps == (1, 6)
        assert all(r >= 1 for r in y_reps)

    def test_communication_bound_positive(self):
        instance = X2YInstance([2, 9], [3, 3], 10)
        assert x2y_communication_lower_bound(instance) >= instance.total_size

    def test_reducer_bound_dominates_components(self):
        instance = X2YInstance([3, 4, 5], [2, 6], 11)
        assert x2y_reducer_lower_bound(instance) >= x2y_volume_bound(instance)
        assert x2y_reducer_lower_bound(instance) >= x2y_pair_cover_bound(instance)

    def test_infeasible_sentinel(self):
        instance = X2YInstance([7], [7], 12)
        assert x2y_pair_cover_bound(instance) > instance.num_pairs
