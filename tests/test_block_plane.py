"""End-to-end tests for the batched block data plane.

Three layers under test: the shared-memory transport primitives
(:mod:`repro.engine.shm`), the engine's block shuffle on the
``processes`` backend (shm and pipe-fallback variants), and the
lifecycle guarantees — byte-identical outputs on every backend and
**zero leaked ``/dev/shm`` segments**, including under fault injection
with real worker kills.

Map/reduce functions are module-level so they pickle on ``processes``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine.backends import ProcessBackend
from repro.engine.codec import decode_block_groups, encode_groups
from repro.engine.engine import ExecutionEngine
from repro.engine.shm import SegmentReader, ShmArena, ShmSlice, shm_available
from repro.faults import RetryPolicy
from repro.obs.store import ObservationRecord

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)

#: Pinned geometry so every backend decomposes work identically.
GEOMETRY = dict(map_chunk_size=2, num_reduce_tasks=4, num_workers=2)

RECORDS = [
    "the quick brown fox",
    "the lazy dog",
    "the quick dog jumps",
    "a brown dog",
    "fox and dog and fox",
    "jumps over the lazy fox",
    "quick brown jumps",
    "dog and fox",
]


def word_map(record: str):
    for word in record.split():
        yield word, 1


def word_reduce(key, values):
    yield key, sum(values)


def _engine(backend, **kwargs):
    merged = dict(
        map_fn=word_map, reduce_fn=word_reduce, backend=backend, **GEOMETRY
    )
    merged.update(kwargs)
    return ExecutionEngine(**merged)


def _own_segments() -> list[str]:
    """Names of this process's live shm segments (the leak detector)."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        return []
    prefix = f"rp{os.getpid()}_"
    return sorted(p.name for p in shm_dir.iterdir() if p.name.startswith(prefix))


class TestShmArena:
    @needs_shm
    def test_stage_and_read_back(self):
        arena = ShmArena()
        try:
            blocks = [
                encode_groups({"a": [1, 2]}),
                encode_groups({"b": [3]}),
            ]
            staged = arena.stage(list(blocks))
            assert all(isinstance(s, ShmSlice) for s in staged)
            assert len({s.segment for s in staged}) == 1  # one segment/partition
            assert arena.segments_created == 1
            assert arena.staged_bytes == sum(len(b) for b in blocks)
            reader = SegmentReader()
            try:
                for source, block in zip(staged, blocks):
                    view = reader.view(source)
                    try:
                        assert decode_block_groups(view) == decode_block_groups(
                            block
                        )
                    finally:
                        view.release()
            finally:
                reader.close()
        finally:
            arena.close()
        assert _own_segments() == []

    @needs_shm
    def test_non_bytes_sources_pass_through(self):
        arena = ShmArena()
        try:
            bucket = {"k": [1]}
            staged = arena.stage([bucket, "/tmp/run.0", encode_groups(bucket)])
            assert staged[0] is bucket
            assert staged[1] == "/tmp/run.0"
            assert isinstance(staged[2], ShmSlice)
        finally:
            arena.close()

    def test_empty_partition_allocates_nothing(self):
        arena = ShmArena()
        try:
            sources = [{"k": [1]}, "/tmp/run.1"]
            assert arena.stage(list(sources)) == sources
            assert arena.segments_created == 0
        finally:
            arena.close()

    @needs_shm
    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena()
        arena.stage([encode_groups({"a": [1]})])
        assert len(_own_segments()) == 1
        arena.close()
        assert _own_segments() == []
        arena.close()  # second close is a no-op

    @needs_shm
    def test_on_close_fires_exactly_once(self):
        fired = []
        arena = ShmArena(on_close=fired.append)
        arena.stage([encode_groups({"a": [1]})])
        arena.close()
        arena.close()
        assert fired == [arena]

    def test_allocation_failure_degrades_to_passthrough(self, monkeypatch):
        import multiprocessing.shared_memory as sm

        def refuse(*args, **kwargs):
            raise OSError("no space on /dev/shm")

        monkeypatch.setattr(sm, "SharedMemory", refuse)
        arena = ShmArena()
        try:
            block = encode_groups({"a": [1]})
            assert arena.stage([block]) == [block]
            assert arena.degraded
            assert arena.segments_created == 0
            # Subsequent stages short-circuit without retrying.
            assert arena.stage([block]) == [block]
        finally:
            arena.close()


class TestBlockShuffleCrossval:
    @pytest.fixture(scope="class")
    def reference(self):
        return _engine("serial").run(RECORDS)

    @pytest.mark.parametrize("use_shm", [False, pytest.param(True, marks=needs_shm)])
    def test_processes_byte_identical_and_leak_free(self, reference, use_shm):
        with ProcessBackend(max_workers=2, use_shm=use_shm) as backend:
            result = _engine(backend).run(RECORDS)
            assert result.outputs == reference.outputs
            assert result.metrics == reference.metrics
            assert result.engine.encoded_bytes > 0
            assert result.engine.encode_seconds >= 0.0
            assert result.engine.decode_seconds >= 0.0
            if use_shm:
                assert result.engine.shm_segments > 0
            else:
                assert result.engine.shm_segments == 0
        assert _own_segments() == []

    def test_serial_and_threads_do_not_encode(self, reference):
        for backend in ("serial", "threads"):
            result = _engine(backend).run(RECORDS)
            assert result.outputs == reference.outputs
            assert result.metrics == reference.metrics
            assert result.engine.encoded_bytes == 0
            assert result.engine.shm_segments == 0

    @needs_shm
    def test_fault_injected_run_is_identical_and_leak_free(self, reference):
        policy = RetryPolicy(
            max_attempts=6, backoff_base=0.001, backoff_max=0.01
        )
        result = _engine(
            "processes", retry=policy, faults="crash=0.2,kill=0.05,seed=7"
        ).run(RECORDS)
        assert result.outputs == reference.outputs
        assert result.metrics == reference.metrics
        assert result.engine.task_retries >= 1
        assert _own_segments() == []

    @needs_shm
    def test_spilled_run_is_identical_and_leak_free(self, reference):
        result = _engine("processes", memory_budget=4).run(RECORDS)
        assert result.outputs == reference.outputs
        assert result.metrics.spilled_bytes > 0
        assert _own_segments() == []


class TestBackendArenaRegistry:
    @needs_shm
    def test_close_sweeps_unreleased_arenas(self):
        backend = ProcessBackend(max_workers=1, use_shm=True)
        arena = backend.block_transport()
        assert isinstance(arena, ShmArena)
        arena.stage([encode_groups({"a": [1]})])
        assert len(_own_segments()) == 1
        backend.close()
        assert arena.closed
        assert _own_segments() == []

    @needs_shm
    def test_arena_close_unregisters_from_backend(self):
        backend = ProcessBackend(max_workers=1, use_shm=True)
        try:
            arena = backend.block_transport()
            assert arena in backend._arenas
            arena.close()
            assert arena not in backend._arenas
        finally:
            backend.close()

    def test_use_shm_false_disables_transport(self):
        backend = ProcessBackend(max_workers=1, use_shm=False)
        try:
            assert backend.block_transport() is None
        finally:
            backend.close()

    def test_serial_and_thread_backends_ship_references(self):
        from repro.engine.backends import SerialBackend, ThreadBackend

        assert SerialBackend.ships_blocks is False
        assert ThreadBackend.ships_blocks is False
        assert ProcessBackend.ships_blocks is True
        assert SerialBackend().block_transport() is None


class TestMetricsSurfacing:
    def test_engine_metrics_row_has_data_plane_columns(self):
        result = _engine("serial").run(RECORDS)
        row = result.engine.as_row()
        for column in (
            "encoded_bytes",
            "encode_s",
            "decode_s",
            "shm_segments",
        ):
            assert column in row

    def test_observation_record_defaults_are_backwards_compatible(self):
        # A pre-codec log line (no data-plane fields) must load cleanly.
        record = ObservationRecord.from_dict(
            {"job_id": "j1", "fingerprint": "f1", "cache_hit": False}
        )
        assert record.encoded_bytes == 0
        assert record.encode_seconds == 0.0
        assert record.decode_seconds == 0.0
        assert record.shm_segments == 0

    def test_observation_record_carries_engine_counters(self):
        result = _engine("serial").run(RECORDS)

        class FakeResult:
            job_id = "j1"
            fingerprint = "f1"
            cache_hit = False
            wall_seconds = 0.5
            metrics = result.metrics
            engine = result.engine

        record = ObservationRecord.from_result(FakeResult())
        assert record.encoded_bytes == result.engine.encoded_bytes
        assert record.shm_segments == result.engine.shm_segments

    def test_summary_rows_include_data_plane_totals(self):
        from repro.obs.store import summarize_observations

        rows = summarize_observations(
            [
                ObservationRecord(
                    job_id="j1",
                    fingerprint="f1",
                    cache_hit=False,
                    backend="processes",
                    encoded_bytes=128,
                    shm_segments=3,
                )
            ]
        )
        assert rows[0]["encoded_bytes"] == 128
        assert rows[0]["shm_segments"] == 3
