#!/usr/bin/env python
"""Capacity planning: choosing the reducer capacity q for a workload.

The paper's three tradeoffs pull in opposite directions — this demo shows
how an operator uses the library to pick q: sweep candidate capacities,
compute the (communication, makespan) Pareto frontier on the target
cluster, and pick a weighted point.  It also demonstrates the *online*
assigner handling a stream of arriving inputs without replanning.

Run:  python examples/capacity_planning_demo.py
"""

from __future__ import annotations

from repro.analysis.frontier import best_capacity, capacity_frontier
from repro.core.a2a.ffd_pairing import ffd_pairing
from repro.core.a2a.online import OnlineA2AAssigner
from repro.core.instance import A2AInstance
from repro.utils.tables import format_table
from repro.workloads.distributions import sample_sizes
from repro.workloads.stats import size_stats

WORKERS = 12
SEED = 99
Q_CANDIDATES = [120, 200, 320, 500, 800, 1300, 2100]


def plan_capacity(sizes: list[int]) -> int:
    """Sweep capacities, print the frontier and return the weighted pick."""
    points = capacity_frontier(sizes, Q_CANDIDATES, WORKERS)
    chosen = best_capacity(
        sizes, Q_CANDIDATES, WORKERS, comm_weight=0.02, makespan_weight=1.0
    )
    rows = []
    for point in points:
        row = point.as_row()
        row["chosen"] = "<-" if point.q == chosen.q else ""
        rows.append(row)
    print(format_table(rows, title=f"capacity frontier on {WORKERS} workers"))
    print(
        f"\nweighted choice: q = {chosen.q} "
        f"(comm {chosen.communication_cost}, makespan {chosen.makespan:.0f})\n"
    )
    return chosen.q


def stream_inputs(q: int, sizes: list[int]) -> None:
    """Feed inputs one at a time into the online assigner and compare."""
    assigner = OnlineA2AAssigner(q)
    checkpoints = {len(sizes) // 4, len(sizes) // 2, len(sizes)}
    rows = []
    for count, size in enumerate(sizes, start=1):
        assigner.add_input(size)
        if count in checkpoints:
            snapshot = assigner.schema()
            snapshot.require_valid()  # valid at every prefix
            offline = ffd_pairing(A2AInstance(sizes[:count], q))
            rows.append(
                {
                    "inputs_seen": count,
                    "online_reducers": snapshot.num_reducers,
                    "offline_would_use": offline.num_reducers,
                    "online_comm": snapshot.communication_cost,
                }
            )
    print(format_table(rows, title=f"online ingest at q = {q} (valid at every prefix)"))
    print(
        "\nThe online assigner extends the schema as inputs arrive — no "
        "replanning, no reshipping — at a small reducer overhead over "
        "offline FFD with hindsight."
    )


def main() -> None:
    sizes = [min(s, Q_CANDIDATES[0] // 2) for s in sample_sizes("zipf", 120, 300, seed=SEED)]
    print(format_table([size_stats(sizes, Q_CANDIDATES[0]).as_row()],
                       title="workload size profile (at the smallest candidate q)"))
    print()
    q = plan_capacity(sizes)
    stream_inputs(q, sizes)


if __name__ == "__main__":
    main()
