#!/usr/bin/env python
"""Skew join with heavy hitters on the simulated MapReduce cluster.

The paper's X2Y motivating example: a join key occurring many times
overloads its reducer under conventional hash partitioning.  This demo
sweeps the skew exponent, comparing the hash join baseline against the
schema-based skew join (X2Y mapping schemas for heavy keys), and shows
the baseline's max reducer load exploding while the schema join stays
within capacity — at the price of some extra communication.

Run:  python examples/skew_join_demo.py
"""

from __future__ import annotations

from repro.apps.skew_join import hash_join, naive_join, schema_skew_join
from repro.utils.tables import format_table
from repro.workloads.relations import generate_join_workload

TUPLES_PER_SIDE = 400
NUM_KEYS = 12
CAPACITY = 80
SEED = 23


def main() -> None:
    print(
        f"join workload: |X| = |Y| = {TUPLES_PER_SIDE} tuples, "
        f"{NUM_KEYS} join keys, reducer capacity q = {CAPACITY}"
    )
    print()

    rows = []
    for skew in [0.0, 0.4, 0.8, 1.2, 1.6]:
        x, y = generate_join_workload(
            TUPLES_PER_SIDE, TUPLES_PER_SIDE, NUM_KEYS, skew, seed=SEED
        )
        truth = naive_join(x, y)
        baseline = hash_join(x, y, CAPACITY)
        schema_based = schema_skew_join(x, y, CAPACITY)
        assert baseline.triple_set() == truth
        assert schema_based.triple_set() == truth

        rows.append(
            {
                "skew": skew,
                "join_rows": len(truth),
                "heavy_keys": len(schema_based.heavy_keys),
                "hash_max_load": baseline.metrics.max_reducer_load,
                "hash_violations": len(baseline.metrics.capacity_violations),
                "schema_max_load": schema_based.metrics.max_reducer_load,
                "schema_comm": schema_based.metrics.communication_cost,
                "hash_comm": baseline.metrics.communication_cost,
            }
        )

    print(format_table(rows, title="hash join vs. schema-based skew join"))
    print()
    print(
        "As skew grows the heavy hitter's reducer load explodes under hash "
        f"partitioning (far beyond q = {CAPACITY}), while the schema-based "
        "join caps every reducer at q by spreading each heavy key over an "
        "X2Y mapping schema; both joins return identical outputs."
    )


if __name__ == "__main__":
    main()
