#!/usr/bin/env python
"""Distributed outer (tensor) product of block-partitioned vectors.

The paper's third X2Y example: every block of ``u`` must meet every block
of ``v`` to produce its tile of the outer-product matrix.  This demo uses
different-sized blocks, compares the auto-selected scheme against the
greedy baseline, and validates the distributed result against the dense
computation.

Run:  python examples/tensor_product_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.tensor_product import distributed_outer_product
from repro.core.bounds import x2y_reducer_lower_bound
from repro.core.instance import X2YInstance
from repro.utils.tables import format_table
from repro.workloads.vectors import dense_outer_product, generate_block_vector

NUM_BLOCKS_U = 8
NUM_BLOCKS_V = 6
CAPACITY = 60
SEED = 42


def main() -> None:
    u = generate_block_vector("u", NUM_BLOCKS_U, CAPACITY, profile="zipf", seed=SEED)
    v = generate_block_vector("v", NUM_BLOCKS_V, CAPACITY, profile="uniform", seed=SEED + 1)
    print(
        f"u: {NUM_BLOCKS_U} blocks, {u.dimension} entries | "
        f"v: {NUM_BLOCKS_V} blocks, {v.dimension} entries | q = {CAPACITY}"
    )
    instance = X2YInstance(
        [b.size for b in u.blocks], [b.size for b in v.blocks], CAPACITY
    )
    print(f"reducer lower bound: {x2y_reducer_lower_bound(instance)}")
    print()

    expected = dense_outer_product(u, v)
    rows = []
    for method in ["auto", "best_split_grid", "greedy"]:
        run = distributed_outer_product(u, v, CAPACITY, method=method)
        assert np.allclose(run.dense(), expected), f"{method} produced wrong matrix"
        rows.append(
            {
                "method": f"{method} ({run.schema.algorithm})",
                "reducers": run.schema.num_reducers,
                "comm_cost": run.metrics.communication_cost,
                "max_load": run.metrics.max_reducer_load,
                "entries": len(run.entries),
            }
        )
    print(format_table(rows, title="distributed outer product (all exact)"))
    print()
    print(
        f"every method reproduces the full {u.dimension} x {v.dimension} "
        "matrix exactly once per entry; they differ only in reducer count "
        "and communication."
    )


if __name__ == "__main__":
    main()
