#!/usr/bin/env python
"""Similarity join of documents on the simulated MapReduce cluster.

The paper's A2A motivating example: every pair of web pages must be
compared because the similarity function admits no LSH shortcut.  This
demo generates a heavy-tailed corpus, runs the schema-driven join next to
the naive broadcast baseline, checks both against brute-force ground
truth, and prints the cost comparison.

Run:  python examples/similarity_join_demo.py
"""

from __future__ import annotations

from repro.apps.similarity_join import run_broadcast_baseline, run_similarity_join
from repro.mapreduce.cluster import schedule_loads
from repro.utils.tables import format_table
from repro.workloads.documents import all_pairs_above, generate_documents

M_DOCS = 60
CAPACITY = 120
THRESHOLD = 0.15
WORKERS = 8
SEED = 7


def main() -> None:
    documents = generate_documents(
        M_DOCS, CAPACITY, profile="zipf", seed=SEED
    )
    total_size = sum(d.size for d in documents)
    print(
        f"corpus: {M_DOCS} documents, total size {total_size}, "
        f"reducer capacity q = {CAPACITY}, threshold {THRESHOLD}"
    )

    schema_run = run_similarity_join(documents, CAPACITY, THRESHOLD)
    naive_run = run_broadcast_baseline(documents, CAPACITY, THRESHOLD)
    truth = all_pairs_above(documents, THRESHOLD)

    assert schema_run.pair_set() == truth, "schema join must match ground truth"
    assert naive_run.pair_set() == truth, "baseline must match ground truth"
    print(f"similar pairs found: {len(truth)} (both methods exact)")
    print()

    rows = []
    for name, run in [("schema join", schema_run), ("broadcast baseline", naive_run)]:
        makespan = schedule_loads(
            list(run.metrics.reducer_loads.values()), WORKERS
        ).makespan
        rows.append(
            {
                "method": name,
                "reducers": run.metrics.num_reducers,
                "comm_cost": run.metrics.communication_cost,
                "max_load": run.metrics.max_reducer_load,
                "over_capacity": len(run.metrics.capacity_violations),
                f"makespan({WORKERS}w)": makespan,
            }
        )
    print(format_table(rows, title="schema-driven join vs. broadcast"))
    print()
    print(
        "The broadcast baseline ships each document once (cheap) but piles "
        "everything onto one reducer, blowing the capacity; the mapping "
        "schema replicates documents (higher communication) to keep every "
        f"reducer within q = {CAPACITY} and the cluster busy."
    )


if __name__ == "__main__":
    main()
