#!/usr/bin/env python
"""Quickstart: build, verify and cost a mapping schema in a dozen lines.

The paper's setting: inputs of different sizes must be assigned to
reducers of capacity ``q`` so that every required pair of inputs meets at
some reducer, using as few reducers as possible.  This script walks the
core API for both problems (A2A and X2Y) and prints the tradeoff metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    A2AInstance,
    X2YInstance,
    solve_a2a,
    solve_x2y,
    summarize,
)
from repro.core.bounds import a2a_reducer_lower_bound, x2y_reducer_lower_bound
from repro.utils.tables import format_table


def a2a_demo() -> None:
    """All-to-all: every pair of inputs must meet (e.g. similarity join)."""
    instance = A2AInstance(sizes=[3, 5, 2, 7, 4, 6, 1, 5], q=14)
    schema = solve_a2a(instance)  # dispatches on instance shape
    schema.require_valid()        # capacity + all-pairs coverage, or raises

    print("== A2A: 8 different-sized inputs, q = 14 ==")
    print(f"algorithm chosen : {schema.algorithm}")
    print(f"reducers used    : {schema.num_reducers} "
          f"(lower bound {a2a_reducer_lower_bound(instance)})")
    print(f"assignment       : {schema.reducers}")
    print(format_table([summarize(schema).as_row()]))
    print()


def x2y_demo() -> None:
    """X-to-Y: every cross pair must meet (e.g. skew join, outer product)."""
    instance = X2YInstance(x_sizes=[4, 5, 6, 3], y_sizes=[3, 3, 7, 2], q=14)
    schema = solve_x2y(instance)
    schema.require_valid()

    print("== X2Y: 4 x 4 different-sized inputs, q = 14 ==")
    print(f"algorithm chosen : {schema.algorithm}")
    print(f"reducers used    : {schema.num_reducers} "
          f"(lower bound {x2y_reducer_lower_bound(instance)})")
    for r, (x_part, y_part) in enumerate(schema.reducers):
        print(f"  reducer {r}: X{list(x_part)} with Y{list(y_part)}")
    print(format_table([summarize(schema).as_row()]))
    print()


def equal_sized_demo() -> None:
    """The equal-sized special case has near-optimal closed-form schemes."""
    instance = A2AInstance.equal_sized(m=24, w=2, q=8)  # k = 4 per reducer
    schema = solve_a2a(instance)
    schema.require_valid()

    print("== A2A equal-sized: m = 24 inputs of size 2, q = 8 ==")
    print(f"algorithm chosen : {schema.algorithm}")
    print(f"reducers used    : {schema.num_reducers} "
          f"(lower bound {a2a_reducer_lower_bound(instance)})")
    print()


def main() -> None:
    a2a_demo()
    x2y_demo()
    equal_sized_demo()


if __name__ == "__main__":
    main()
